package core

// The compiled-state layer: everything NewEngine computes from the
// extraction tables before the first kernel launch — fan-in CSR,
// levelization, SP/EP lookup tables, clock depths, fan-out CSR — captured as
// one flat, exported structure. State is the unit internal/snap serializes:
// an engine (single-corner or scenario-batched) reconstructed from a State
// skips parsing, reference signoff, extraction and levelization entirely and
// is ready to propagate after allocating its working tensors.
//
// Construction is split so both paths share one code body:
//
//	NewEngine(t, opt)          = Compile(t) + NewEngineFromState(st, opt)
//	warm start (internal/snap) =  snap.Open  + NewEngineFromState(st, opt)
//
// which is what makes the warm/cold differential guarantee cheap to uphold:
// the slices a warm engine propagates over are bit-identical to the ones a
// cold engine just built, so every downstream result is too.

import (
	"fmt"
	"runtime"

	"insta/internal/circuitops"
	"insta/internal/levelize"
	"insta/internal/liberty"
	"insta/internal/obs"
	"insta/internal/sched"
	"insta/internal/sdc"
)

// State is the fully compiled timing state of one design: the immutable
// skeleton an Engine propagates over, with no working tensors and no
// scheduler attached. All slices are structure-of-arrays slabs so a snapshot
// can decode each with a single copy.
//
// Engines built from one State share its slices (they are read-only after
// Compile) except the arc annotations, which each engine copies so
// SetArcDelay stays private to the engine. A State obtained from
// Engine.ExportState shares the engine's memory and must be serialized (or
// dropped) before the engine is mutated further.
type State struct {
	Design  string
	NumPins int
	Period  float64
	NSigma  float64

	// Fan-in CSR over pins (see Engine).
	FaninStart []int32
	FaninArc   []int32
	FaninFrom  []int32
	FaninSense []uint8

	// Arc annotations indexed by extraction arc id, per output transition.
	ArcMean [2][]float64
	ArcStd  [2][]float64
	ArcKind []uint8
	ArcCell []int32
	ArcNet  []int32
	ArcFrom []int32
	ArcTo   []int32

	// Level schedule (levelize.Result, flattened).
	NumLevels    int
	LvLevel      []int32
	LvOrder      []int32
	LvLevelStart []int32

	// Startpoints / endpoints. EpHold carries the hold requirements
	// unconditionally (unlike a setup-only Engine), so one snapshot serves
	// both setup-only and hold-enabled consumers.
	SpPin   []int32
	SpNode  []int32
	SpMean  []float64
	SpStd   []float64
	SpOfPin []int32
	EpPin   []int32
	EpNode  []int32
	EpBase  [2][]float64
	EpHold  [2][]float64
	EpOfPin []int32

	// Clock network (CPPR credit).
	ClkParent []int32
	ClkCumVar []float64
	ClkDepth  []int32

	// Timing exceptions as raw rows (column-wise); the O(1) lookup table is
	// recompiled at engine construction — it is tiny relative to the graph.
	ExcSP     []int32
	ExcEP     []int32
	ExcKind   []uint8
	ExcCycles []int32

	// Fan-out CSR: slot i reaches pin FoAdj[i] through arc FoArc[i].
	FoStart []int32
	FoAdj   []int32
	FoArc   []int32
}

// Compile builds the propagation-ready compiled state from extraction
// tables: the one-time initialization of Fig. 1/Fig. 2 minus the engine's
// working tensors. This is the expensive half of NewEngine; a snapshot of
// the result warm-starts any engine configuration.
func Compile(t *circuitops.Tables) (*State, error) { return compile(t, nil, nil) }

// CompileTraced is Compile recording its levelize phase as a child of
// parent (used by the batched engine, which owns the enclosing build span).
func CompileTraced(t *circuitops.Tables, parent *obs.Span) (*State, error) {
	return compile(t, parent, nil)
}

// CompileIncremental recompiles extraction tables after a structural edit —
// arcs spliced, retargeted or removed, pins appended — re-levelizing only
// the forward closure of the seed pins (every pin whose fan-in set changed,
// including appended pins) against the previous compiled state. The slab
// building body is shared with Compile and levelize.Incremental is
// bit-identical to a full levelization, so the returned State equals
// Compile(t) of the same edited tables slab for slab; only the levelize
// phase is localized. The returned stats report the re-levelized region for
// telemetry (the serving layer's per-op histogram).
func CompileIncremental(t *circuitops.Tables, prev *State, seeds []int32) (*State, levelize.IncStats, error) {
	var is levelize.IncStats
	if prev == nil {
		return nil, is, fmt.Errorf("core: CompileIncremental requires a previous state")
	}
	prevLv := &levelize.Result{
		Level:      prev.LvLevel,
		NumLevels:  prev.NumLevels,
		Order:      prev.LvOrder,
		LevelStart: prev.LvLevelStart,
	}
	st, err := compile(t, nil, func(n int, arcs []levelize.Arc) (*levelize.Result, error) {
		lv, s, err := levelize.Incremental(n, arcs, prevLv, seeds)
		is = s
		return lv, err
	})
	return st, is, err
}

// compile is Compile with an optional parent span for build tracing and an
// optional levelizer override (nil = full levelize.Levelize; the incremental
// path substitutes a localized re-levelization that is bit-identical on the
// edited graph).
func compile(t *circuitops.Tables, build *obs.Span, lvFn func(int, []levelize.Arc) (*levelize.Result, error)) (*State, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	st := &State{
		Design:  t.Design,
		NumPins: t.NumPins,
		Period:  t.Period,
		NSigma:  t.NSigma,
	}

	// Arc annotations and fan-in CSR.
	nArcs := len(t.Arcs)
	for rf := 0; rf < 2; rf++ {
		st.ArcMean[rf] = make([]float64, nArcs)
		st.ArcStd[rf] = make([]float64, nArcs)
	}
	st.ArcKind = make([]uint8, nArcs)
	st.ArcCell = make([]int32, nArcs)
	st.ArcNet = make([]int32, nArcs)
	st.ArcFrom = make([]int32, nArcs)
	st.ArcTo = make([]int32, nArcs)
	counts := make([]int32, t.NumPins+1)
	for i := range t.Arcs {
		a := &t.Arcs[i]
		st.ArcMean[liberty.Rise][i] = a.MeanRise
		st.ArcStd[liberty.Rise][i] = a.StdRise
		st.ArcMean[liberty.Fall][i] = a.MeanFall
		st.ArcStd[liberty.Fall][i] = a.StdFall
		st.ArcKind[i] = a.Kind
		st.ArcCell[i] = a.Cell
		st.ArcNet[i] = a.Net
		st.ArcFrom[i] = a.From
		st.ArcTo[i] = a.To
		counts[a.To+1]++
	}
	st.FaninStart = make([]int32, t.NumPins+1)
	for i := 0; i < t.NumPins; i++ {
		st.FaninStart[i+1] = st.FaninStart[i] + counts[i+1]
	}
	st.FaninArc = make([]int32, nArcs)
	st.FaninFrom = make([]int32, nArcs)
	st.FaninSense = make([]uint8, nArcs)
	cursor := make([]int32, t.NumPins)
	for i := range t.Arcs {
		a := &t.Arcs[i]
		pos := st.FaninStart[a.To] + cursor[a.To]
		cursor[a.To]++
		st.FaninArc[pos] = int32(i)
		st.FaninFrom[pos] = a.From
		st.FaninSense[pos] = a.Sense
	}

	// Levelize — INSTA's own topological sort (paper §III-A).
	lsp := build.Child("levelize")
	lvArcs := make([]levelize.Arc, nArcs)
	for i := range t.Arcs {
		lvArcs[i] = levelize.Arc{From: t.Arcs[i].From, To: t.Arcs[i].To}
	}
	if lvFn == nil {
		lvFn = levelize.Levelize
	}
	lv, err := lvFn(t.NumPins, lvArcs)
	if err != nil {
		return nil, err
	}
	st.NumLevels = lv.NumLevels
	st.LvLevel, st.LvOrder, st.LvLevelStart = lv.Level, lv.Order, lv.LevelStart
	lsp.End()

	// Startpoints / endpoints.
	st.SpOfPin = make([]int32, t.NumPins)
	for i := range st.SpOfPin {
		st.SpOfPin[i] = -1
	}
	for i, s := range t.SPs {
		st.SpPin = append(st.SpPin, s.Pin)
		st.SpNode = append(st.SpNode, s.ClockNode)
		st.SpMean = append(st.SpMean, s.Mean)
		st.SpStd = append(st.SpStd, s.Std)
		st.SpOfPin[s.Pin] = int32(i)
	}
	st.EpBase[0] = make([]float64, len(t.EPs))
	st.EpBase[1] = make([]float64, len(t.EPs))
	st.EpHold[0] = make([]float64, len(t.EPs))
	st.EpHold[1] = make([]float64, len(t.EPs))
	st.EpOfPin = make([]int32, t.NumPins)
	for i := range st.EpOfPin {
		st.EpOfPin[i] = -1
	}
	for i, ep := range t.EPs {
		st.EpPin = append(st.EpPin, ep.Pin)
		st.EpNode = append(st.EpNode, ep.CaptureNode)
		st.EpBase[0][i] = ep.BaseReqRise
		st.EpBase[1][i] = ep.BaseReqFall
		st.EpHold[0][i] = ep.HoldReqRise
		st.EpHold[1][i] = ep.HoldReqFall
		st.EpOfPin[ep.Pin] = int32(i)
	}

	// Clock network.
	nClk := len(t.ClockNodes)
	st.ClkParent = make([]int32, nClk)
	st.ClkCumVar = make([]float64, nClk)
	st.ClkDepth = make([]int32, nClk)
	for i, c := range t.ClockNodes {
		st.ClkParent[i] = c.Parent
		st.ClkCumVar[i] = c.CumVar
		if c.Parent >= 0 {
			st.ClkDepth[i] = st.ClkDepth[c.Parent] + 1
		}
	}

	// Exception rows, column-wise.
	nExc := len(t.Exceptions)
	st.ExcSP = make([]int32, nExc)
	st.ExcEP = make([]int32, nExc)
	st.ExcKind = make([]uint8, nExc)
	st.ExcCycles = make([]int32, nExc)
	for i, x := range t.Exceptions {
		st.ExcSP[i] = x.SPPin
		st.ExcEP[i] = x.EPPin
		st.ExcKind[i] = x.Kind
		st.ExcCycles[i] = x.Cycles
	}

	// Fan-out CSR (incremental propagation, backward gather, overlay reads).
	st.FoStart = make([]int32, t.NumPins+1)
	for i := range st.ArcFrom {
		st.FoStart[st.ArcFrom[i]+1]++
	}
	for i := 0; i < t.NumPins; i++ {
		st.FoStart[i+1] += st.FoStart[i]
	}
	st.FoAdj = make([]int32, nArcs)
	st.FoArc = make([]int32, nArcs)
	foCursor := make([]int32, t.NumPins)
	for i := range st.ArcFrom {
		f := st.ArcFrom[i]
		pos := st.FoStart[f] + foCursor[f]
		foCursor[f]++
		st.FoAdj[pos] = st.ArcTo[i]
		st.FoArc[pos] = int32(i)
	}
	return st, nil
}

// Tables reconstructs extraction tables equivalent to the ones the state was
// compiled from (arc order and all attributes preserved). Warm-started tools
// use this to run table-level consumers (Monte Carlo validation, re-export)
// without the original sources.
func (st *State) Tables() *circuitops.Tables {
	t := &circuitops.Tables{
		Design:  st.Design,
		NumPins: st.NumPins,
		Period:  st.Period,
		NSigma:  st.NSigma,
	}
	t.Arcs = make([]circuitops.ArcRow, len(st.ArcFrom))
	for i := range t.Arcs {
		t.Arcs[i] = circuitops.ArcRow{
			From: st.ArcFrom[i], To: st.ArcTo[i],
			Kind: st.ArcKind[i], Sense: st.FaninSense[faninPos(st, int32(i))],
			Cell: st.ArcCell[i], Net: st.ArcNet[i],
			MeanRise: st.ArcMean[liberty.Rise][i], StdRise: st.ArcStd[liberty.Rise][i],
			MeanFall: st.ArcMean[liberty.Fall][i], StdFall: st.ArcStd[liberty.Fall][i],
		}
	}
	t.SPs = make([]circuitops.SPRow, len(st.SpPin))
	for i := range t.SPs {
		t.SPs[i] = circuitops.SPRow{
			Pin: st.SpPin[i], ClockNode: st.SpNode[i],
			Mean: st.SpMean[i], Std: st.SpStd[i],
		}
	}
	t.EPs = make([]circuitops.EPRow, len(st.EpPin))
	for i := range t.EPs {
		t.EPs[i] = circuitops.EPRow{
			Pin: st.EpPin[i], CaptureNode: st.EpNode[i],
			BaseReqRise: st.EpBase[0][i], BaseReqFall: st.EpBase[1][i],
			HoldReqRise: st.EpHold[0][i], HoldReqFall: st.EpHold[1][i],
		}
	}
	t.ClockNodes = make([]circuitops.ClockNodeRow, len(st.ClkParent))
	for i := range t.ClockNodes {
		t.ClockNodes[i] = circuitops.ClockNodeRow{Parent: st.ClkParent[i], CumVar: st.ClkCumVar[i]}
	}
	t.Exceptions = make([]circuitops.ExceptionRow, len(st.ExcSP))
	for i := range t.Exceptions {
		t.Exceptions[i] = circuitops.ExceptionRow{
			SPPin: st.ExcSP[i], EPPin: st.ExcEP[i],
			Kind: st.ExcKind[i], Cycles: st.ExcCycles[i],
		}
	}
	return t
}

// faninPos locates arc's slot in the fan-in CSR (slots of a pin hold its
// incoming arcs in extraction order, so a linear probe over the — typically
// tiny — fan-in list suffices).
func faninPos(st *State, arc int32) int32 {
	to := st.ArcTo[arc]
	for pos := st.FaninStart[to]; pos < st.FaninStart[to+1]; pos++ {
		if st.FaninArc[pos] == arc {
			return pos
		}
	}
	return 0 // unreachable on a Validate()-clean state
}

// CompileExceptions rebuilds the O(1) exception lookup from the state's
// rows, reusing the sdc compiler (shared by the warm single-corner and
// batched constructors).
func (st *State) CompileExceptions() (*sdc.ExceptionTable, error) {
	return st.exceptionTables().CompileExceptions()
}

// exceptionTables wraps the state's exception rows in just enough of a
// Tables value to reuse the sdc compiler — the warm path never materializes
// the full arc rows.
func (st *State) exceptionTables() *circuitops.Tables {
	t := &circuitops.Tables{Period: st.Period}
	t.Exceptions = make([]circuitops.ExceptionRow, len(st.ExcSP))
	for i := range t.Exceptions {
		t.Exceptions[i] = circuitops.ExceptionRow{
			SPPin: st.ExcSP[i], EPPin: st.ExcEP[i],
			Kind: st.ExcKind[i], Cycles: st.ExcCycles[i],
		}
	}
	return t
}

// Validate performs the structural checks that make a decoded State safe to
// hand to NewEngineFromState: every index in range, every CSR monotone and
// consistent with its slab lengths. It is the second line of defense behind
// the snapshot checksum — a corrupted snapshot must produce a typed error,
// never an out-of-range panic inside a kernel.
func (st *State) Validate() error {
	n := st.NumPins
	if n < 0 {
		return fmt.Errorf("core: state: negative pin count %d", n)
	}
	nArcs := len(st.ArcFrom)
	if len(st.ArcTo) != nArcs || len(st.ArcKind) != nArcs || len(st.ArcCell) != nArcs ||
		len(st.ArcNet) != nArcs || len(st.FaninArc) != nArcs || len(st.FaninFrom) != nArcs ||
		len(st.FaninSense) != nArcs || len(st.FoAdj) != nArcs || len(st.FoArc) != nArcs {
		return fmt.Errorf("core: state: inconsistent arc slab lengths")
	}
	for rf := 0; rf < 2; rf++ {
		if len(st.ArcMean[rf]) != nArcs || len(st.ArcStd[rf]) != nArcs {
			return fmt.Errorf("core: state: inconsistent arc annotation lengths")
		}
	}
	for i := 0; i < nArcs; i++ {
		if st.ArcFrom[i] < 0 || int(st.ArcFrom[i]) >= n || st.ArcTo[i] < 0 || int(st.ArcTo[i]) >= n {
			return fmt.Errorf("core: state: arc %d pins out of range", i)
		}
	}
	if err := validateCSR("fanin", st.FaninStart, n, nArcs); err != nil {
		return err
	}
	if err := validateCSR("fanout", st.FoStart, n, nArcs); err != nil {
		return err
	}
	for i := 0; i < nArcs; i++ {
		if st.FaninArc[i] < 0 || int(st.FaninArc[i]) >= nArcs {
			return fmt.Errorf("core: state: fanin slot %d arc out of range", i)
		}
		if st.FaninFrom[i] < 0 || int(st.FaninFrom[i]) >= n {
			return fmt.Errorf("core: state: fanin slot %d pin out of range", i)
		}
		if st.FoAdj[i] < 0 || int(st.FoAdj[i]) >= n {
			return fmt.Errorf("core: state: fanout slot %d pin out of range", i)
		}
		if st.FoArc[i] < 0 || int(st.FoArc[i]) >= nArcs {
			return fmt.Errorf("core: state: fanout slot %d arc out of range", i)
		}
	}

	// Level schedule: Order is a permutation of pins grouped by LevelStart,
	// and Level agrees with the grouping.
	if len(st.LvLevel) != n || len(st.LvOrder) != n {
		return fmt.Errorf("core: state: level slab lengths %d/%d != pins %d", len(st.LvLevel), len(st.LvOrder), n)
	}
	if st.NumLevels < 0 || len(st.LvLevelStart) != st.NumLevels+1 {
		if !(n == 0 && st.NumLevels == 0 && len(st.LvLevelStart) <= 1) {
			return fmt.Errorf("core: state: level starts length %d != levels %d + 1", len(st.LvLevelStart), st.NumLevels)
		}
	}
	if err := validateCSR("levels", st.LvLevelStart, st.NumLevels, n); err != nil {
		return err
	}
	seen := make([]bool, n)
	for l := 0; l < st.NumLevels; l++ {
		for _, p := range st.LvOrder[st.LvLevelStart[l]:st.LvLevelStart[l+1]] {
			if p < 0 || int(p) >= n || seen[p] {
				return fmt.Errorf("core: state: level order is not a permutation at level %d", l)
			}
			seen[p] = true
			if int(st.LvLevel[p]) != l {
				return fmt.Errorf("core: state: pin %d level %d disagrees with schedule level %d", p, st.LvLevel[p], l)
			}
		}
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("core: state: pin %d missing from level order", p)
		}
	}

	// SP/EP tables and the per-pin inverse maps.
	nClk := int32(len(st.ClkParent))
	if len(st.ClkCumVar) != int(nClk) || len(st.ClkDepth) != int(nClk) {
		return fmt.Errorf("core: state: inconsistent clock slab lengths")
	}
	for i, p := range st.ClkParent {
		if p >= int32(i) || p < -1 {
			return fmt.Errorf("core: state: clock node %d has non-preceding parent %d", i, p)
		}
	}
	nSP := len(st.SpPin)
	if len(st.SpNode) != nSP || len(st.SpMean) != nSP || len(st.SpStd) != nSP || len(st.SpOfPin) != n {
		return fmt.Errorf("core: state: inconsistent SP slab lengths")
	}
	for i := 0; i < nSP; i++ {
		if st.SpPin[i] < 0 || int(st.SpPin[i]) >= n || st.SpNode[i] < 0 || st.SpNode[i] >= nClk {
			return fmt.Errorf("core: state: sp %d out of range", i)
		}
	}
	for p, i := range st.SpOfPin {
		if i != -1 && (i < 0 || int(i) >= nSP || st.SpPin[i] != int32(p)) {
			return fmt.Errorf("core: state: spOfPin[%d] = %d is inconsistent", p, i)
		}
	}
	nEP := len(st.EpPin)
	if len(st.EpNode) != nEP || len(st.EpOfPin) != n {
		return fmt.Errorf("core: state: inconsistent EP slab lengths")
	}
	for rf := 0; rf < 2; rf++ {
		if len(st.EpBase[rf]) != nEP || len(st.EpHold[rf]) != nEP {
			return fmt.Errorf("core: state: inconsistent EP requirement lengths")
		}
	}
	for i := 0; i < nEP; i++ {
		if st.EpPin[i] < 0 || int(st.EpPin[i]) >= n || st.EpNode[i] < 0 || st.EpNode[i] >= nClk {
			return fmt.Errorf("core: state: ep %d out of range", i)
		}
	}
	for p, i := range st.EpOfPin {
		if i != -1 && (i < 0 || int(i) >= nEP || st.EpPin[i] != int32(p)) {
			return fmt.Errorf("core: state: epOfPin[%d] = %d is inconsistent", p, i)
		}
	}
	nExc := len(st.ExcSP)
	if len(st.ExcEP) != nExc || len(st.ExcKind) != nExc || len(st.ExcCycles) != nExc {
		return fmt.Errorf("core: state: inconsistent exception slab lengths")
	}
	for i := 0; i < nExc; i++ {
		if st.ExcSP[i] < -1 || int(st.ExcSP[i]) >= n || st.ExcEP[i] < -1 || int(st.ExcEP[i]) >= n {
			return fmt.Errorf("core: state: exception %d pins out of range", i)
		}
	}
	return nil
}

// validateCSR checks a CSR start array: len(start) == rows+1 (or empty with
// zero rows), start[0] == 0, monotone non-decreasing, last == slots.
func validateCSR(name string, start []int32, rows, slots int) error {
	if rows == 0 && len(start) <= 1 {
		if slots != 0 {
			return fmt.Errorf("core: state: %s CSR empty but %d slots", name, slots)
		}
		return nil
	}
	if len(start) != rows+1 {
		return fmt.Errorf("core: state: %s CSR length %d != rows %d + 1", name, len(start), rows)
	}
	if start[0] != 0 || int(start[rows]) != slots {
		return fmt.Errorf("core: state: %s CSR bounds [%d,%d] != [0,%d]", name, start[0], start[rows], slots)
	}
	for i := 0; i < rows; i++ {
		if start[i] > start[i+1] {
			return fmt.Errorf("core: state: %s CSR not monotone at row %d", name, i)
		}
	}
	return nil
}

// NewEngineFromState stands up a ready-to-propagate engine over a compiled
// state — the warm-start constructor. It shares the state's immutable
// skeleton (topology, schedule, SP/EP, clock, fan-out CSR), copies the arc
// annotations so SetArcDelay stays private to this engine, and allocates
// fresh working tensors; no parsing, extraction or levelization happens
// here. The state must be Compile output or a Validate()-clean decode.
//
// Engines built this way are bit-identical in every result to a cold
// NewEngine over the tables the state was compiled from: NewEngine itself is
// Compile + this constructor.
func NewEngineFromState(st *State, opt Options) (*Engine, error) {
	e, err := newEngineFromState(st, opt)
	if err != nil {
		return nil, err
	}
	sp := e.tracer.StartArg("engine-restore", "pins", int64(st.NumPins))
	sp.End()
	return e, nil
}

// newEngineFromState is NewEngineFromState without the restore span, shared
// with the cold NewEngine path (which records "engine-build" instead).
func newEngineFromState(st *State, opt Options) (*Engine, error) {
	return newEngineFromStateCap(st, opt, st.NumPins)
}

// newEngineFromStateCap is newEngineFromState with an explicit tensor row
// stride capPins >= st.NumPins. The surplus rows are headroom the seeded
// constructor reserves so later structural reseeds can append pins without
// relocating the rf=1 tensor blocks; a plain engine gets no headroom.
func newEngineFromStateCap(st *State, opt Options, capPins int) (*Engine, error) {
	if opt.TopK < 1 {
		return nil, fmt.Errorf("core: TopK must be >= 1, got %d", opt.TopK)
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.NumCPU()
	}
	if opt.Tau <= 0 {
		opt.Tau = 0.01
	}
	e := &Engine{
		opt:     opt,
		st:      st,
		numPins: st.NumPins,
		capPins: capPins,
		period:  st.Period,
		nSigma:  st.NSigma,
		pool:    sched.New(opt.Workers, opt.Grain),
		tracer:  opt.Tracer,
	}
	e.faninStart, e.faninArc, e.faninFrom, e.faninSense =
		st.FaninStart, st.FaninArc, st.FaninFrom, st.FaninSense
	for rf := 0; rf < 2; rf++ {
		e.arcMean[rf] = append([]float64(nil), st.ArcMean[rf]...)
		e.arcStd[rf] = append([]float64(nil), st.ArcStd[rf]...)
	}
	e.arcKind, e.arcCell, e.arcNet, e.arcFrom, e.arcTo =
		st.ArcKind, st.ArcCell, st.ArcNet, st.ArcFrom, st.ArcTo
	e.lv = &levelize.Result{
		Level:      st.LvLevel,
		NumLevels:  st.NumLevels,
		Order:      st.LvOrder,
		LevelStart: st.LvLevelStart,
	}
	e.spPin, e.spNode, e.spMean, e.spStd, e.spOfPin =
		st.SpPin, st.SpNode, st.SpMean, st.SpStd, st.SpOfPin
	e.epPin, e.epNode, e.epBase, e.epOfPin = st.EpPin, st.EpNode, st.EpBase, st.EpOfPin
	e.clkParent, e.clkCumVar, e.clkDepth = st.ClkParent, st.ClkCumVar, st.ClkDepth
	e.foStart, e.foAdj, e.foArc = st.FoStart, st.FoAdj, st.FoArc

	var err error
	if e.exc, err = st.exceptionTables().CompileExceptions(); err != nil {
		return nil, err
	}

	k := opt.TopK
	sz := 2 * capPins * k
	e.topArr = make([]float64, sz)
	e.topMean = make([]float64, sz)
	e.topStd = make([]float64, sz)
	e.topSP = make([]int32, sz)
	e.epSlack = make([]float64, len(st.EpPin))
	e.epSP = make([]int32, len(st.EpPin))
	e.epRF = make([]int8, len(st.EpPin))
	if opt.Hold {
		e.initHold(st.EpHold[0], st.EpHold[1])
	}
	return e, nil
}

// NewEngineSeeded stands up an engine over st — the compiled state of a
// structurally edited netlist — warm-started from prev, a fully propagated
// engine over the pre-edit netlist, by re-propagating only the fan-out cone
// of the seed pins (every pin whose fan-in set changed, including appended
// pins) instead of the whole graph.
//
// The result is bit-identical to a cold NewEngineFromState(st, opt) + Run():
// pin ids are stable across structural edits (pins are append-only; removed
// instances go floating), so prev's converged Top-K planes are valid arrival
// state for every pin outside the seeds' cone, and the equality-stopping
// incremental wavefront recomputes exactly the pins whose queues differ.
// Requires opt.TopK == prev TopK and opt.Hold == prev hold so the copied
// planes line up; prev must have completed a full Run (or an equivalent
// incremental commit) so its queues are converged.
func NewEngineSeeded(st *State, prev *Engine, seeds []int32, opt Options) (*Engine, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: NewEngineSeeded requires a previous engine")
	}
	if opt.TopK != prev.opt.TopK {
		return nil, fmt.Errorf("core: seeded engine TopK %d != previous %d", opt.TopK, prev.opt.TopK)
	}
	if opt.Hold != (prev.hold != nil) {
		return nil, fmt.Errorf("core: seeded engine hold=%v != previous %v", opt.Hold, prev.hold != nil)
	}
	if st.NumPins < prev.numPins {
		return nil, fmt.Errorf("core: pin count shrank %d -> %d (pins are append-only)", prev.numPins, st.NumPins)
	}
	// Reserve tensor headroom so that the sessions holding this engine can
	// keep appending pins through in-place reseeds (ReseedStructural) without
	// relocating the rf blocks — the steady state of an optimizer issuing
	// many small structural edits against one session.
	e, err := newEngineFromStateCap(st, opt, st.NumPins+seedHeadroom)
	if err != nil {
		return nil, err
	}
	sp := e.tracer.StartArg("engine-seed", "seeds", int64(len(seeds)))
	defer sp.End()

	// Per-rf block copy of prev's converged planes. The tensors are rf-major
	// (((rf*capPins)+pin)*K), so each rf block relocates when the stride
	// grows.
	k := opt.TopK
	blk := prev.numPins * k
	for rf := 0; rf < 2; rf++ {
		dst, src := rf*e.capPins*k, rf*prev.capPins*k
		copy(e.topArr[dst:dst+blk], prev.topArr[src:src+blk])
		copy(e.topMean[dst:dst+blk], prev.topMean[src:src+blk])
		copy(e.topStd[dst:dst+blk], prev.topStd[src:src+blk])
		copy(e.topSP[dst:dst+blk], prev.topSP[src:src+blk])
		if e.hold != nil {
			copy(e.hold.negArr[dst:dst+blk], prev.hold.negArr[src:src+blk])
			copy(e.hold.mean[dst:dst+blk], prev.hold.mean[src:src+blk])
			copy(e.hold.std[dst:dst+blk], prev.hold.std[src:src+blk])
			copy(e.hold.sp[dst:dst+blk], prev.hold.sp[src:src+blk])
		}
		// Appended pins start with empty queues, exactly like a cold engine
		// entering its first propagatePin.
		for p := int32(prev.numPins); int(p) < st.NumPins; p++ {
			b := e.base(rf, p)
			clearQueue(e.topArr[b:b+k], e.topSP[b:b+k])
			if e.hold != nil {
				clearQueue(e.hold.negArr[b:b+k], e.hold.sp[b:b+k])
			}
		}
	}

	e.PropagateIncrementalPins(seeds)
	e.evalSlacks()
	if e.hold != nil {
		e.evalHoldSlacks()
	}
	return e, nil
}

// seedHeadroom is the pin headroom (tensor rows beyond NumPins) a seeded
// engine reserves for in-place structural growth: 4096 pins = 2048 buffer
// insertions before a reseed has to relocate the tensors. The cost is
// 2*headroom*K float64 slots per tensor — a few MB at most.
const seedHeadroom = 4096

// ReseedStructural re-points a session-private engine at st — the compiled
// state of the next structural edit over the engine's current netlist — and
// re-propagates only the seed pins' fan-out cone, all in place: no tensor
// allocation, no annotation copy, no exception recompile. It is the
// steady-state counterpart of NewEngineSeeded for an optimizer applying many
// edit batches to one session; the result is bit-identical to a cold
// NewEngineFromState(st, opt) + Run() for the same reason the seeded
// constructor is (pins are append-only, so converged queues outside the
// seeds' cone remain exact).
//
// Contract: st must be derived from the engine's current compiled state by
// CompileIncremental/CompileIncrementalPatched (pin count grows, SP/EP/
// exception tables unchanged), and the engine must be private to the caller
// — the engine ADOPTS st's annotation slabs (SetArcDelay writes them), and
// every lazily built cache is dropped. Precondition violations are reported
// before anything is mutated.
func (e *Engine) ReseedStructural(st *State, seeds []int32) error {
	if st == nil {
		return fmt.Errorf("core: ReseedStructural requires a state")
	}
	if st.NumPins < e.numPins {
		return fmt.Errorf("core: pin count shrank %d -> %d (pins are append-only)", e.numPins, st.NumPins)
	}
	if len(st.EpPin) != len(e.epPin) || len(st.SpPin) != len(e.spPin) {
		return fmt.Errorf("core: ReseedStructural cannot change the SP/EP sets")
	}
	sp := e.tracer.StartArg("engine-reseed", "seeds", int64(len(seeds)))
	defer sp.End()

	k := e.opt.TopK
	if st.NumPins > e.capPins {
		// Out of headroom: relocate the rf blocks into fresh tensors with a
		// new allowance. Rare — it takes headroom/2 insert batches to get
		// here.
		newCap := st.NumPins + seedHeadroom
		grow := func(old []float64) []float64 {
			nw := make([]float64, 2*newCap*k)
			for rf := 0; rf < 2; rf++ {
				copy(nw[rf*newCap*k:], old[rf*e.capPins*k:rf*e.capPins*k+e.numPins*k])
			}
			return nw
		}
		growI := func(old []int32) []int32 {
			nw := make([]int32, 2*newCap*k)
			for rf := 0; rf < 2; rf++ {
				copy(nw[rf*newCap*k:], old[rf*e.capPins*k:rf*e.capPins*k+e.numPins*k])
			}
			return nw
		}
		e.topArr, e.topMean, e.topStd = grow(e.topArr), grow(e.topMean), grow(e.topStd)
		e.topSP = growI(e.topSP)
		if e.hold != nil {
			e.hold.negArr, e.hold.mean, e.hold.std = grow(e.hold.negArr), grow(e.hold.mean), grow(e.hold.std)
			e.hold.sp = growI(e.hold.sp)
		}
		e.capPins = newCap
	}
	// Appended pins start with empty queues, exactly like a cold engine
	// entering its first propagatePin. base() depends only on capPins, so
	// this is safe before numPins moves.
	for rf := 0; rf < 2; rf++ {
		for p := int32(e.numPins); int(p) < st.NumPins; p++ {
			b := e.base(rf, p)
			clearQueue(e.topArr[b:b+k], e.topSP[b:b+k])
			if e.hold != nil {
				clearQueue(e.hold.negArr[b:b+k], e.hold.sp[b:b+k])
			}
		}
	}

	// Adopt the new skeleton — including the annotation slabs: the session
	// that owns this engine also owns st, and keeping one copy is what lets
	// SetArcDelay, the tables and the compiled state stay coherent without a
	// per-edit O(arcs) clone.
	e.st = st
	e.numPins = st.NumPins
	e.faninStart, e.faninArc, e.faninFrom, e.faninSense =
		st.FaninStart, st.FaninArc, st.FaninFrom, st.FaninSense
	e.arcMean, e.arcStd = st.ArcMean, st.ArcStd
	e.arcKind, e.arcCell, e.arcNet, e.arcFrom, e.arcTo =
		st.ArcKind, st.ArcCell, st.ArcNet, st.ArcFrom, st.ArcTo
	e.lv = &levelize.Result{
		Level:      st.LvLevel,
		NumLevels:  st.NumLevels,
		Order:      st.LvOrder,
		LevelStart: st.LvLevelStart,
	}
	e.spPin, e.spNode, e.spMean, e.spStd, e.spOfPin =
		st.SpPin, st.SpNode, st.SpMean, st.SpStd, st.SpOfPin
	e.epPin, e.epNode, e.epBase, e.epOfPin = st.EpPin, st.EpNode, st.EpBase, st.EpOfPin
	e.clkParent, e.clkCumVar, e.clkDepth = st.ClkParent, st.ClkCumVar, st.ClkDepth
	e.foStart, e.foAdj, e.foArc = st.FoStart, st.FoAdj, st.FoArc
	if e.hold != nil {
		e.hold.epHold = st.EpHold
	}
	// The exception lookup keys on SP/EP pins only, which structural edits
	// never touch — e.exc stays. Every topology-derived lazy cache is
	// invalidated; it rebuilds on first use at its usual (small) cost.
	e.inc = nil
	e.plan = nil
	e.pinOwner, e.arcStage, e.stageAcc = nil, nil, nil
	for rf := 0; rf < 2; rf++ {
		e.gradArr[rf], e.gradArrStd[rf] = nil, nil
		e.seedMean[rf], e.seedStd[rf] = nil, nil
		e.flowMean[rf], e.flowStd[rf] = nil, nil
		e.gradMean[rf], e.gradStd[rf] = nil, nil
	}

	e.PropagateIncrementalPins(seeds)
	e.evalSlacks()
	if e.hold != nil {
		e.evalHoldSlacks()
	}
	return nil
}

// Options returns the engine's construction options (topo sessions use them
// to build seeded engines with the base engine's exact configuration).
func (e *Engine) Options() Options { return e.opt }

// ExportState returns the engine's compiled state with its *current* arc
// annotations — the payload of a snapshot save (e.g. the serving daemon's
// /admin/snapshot after committed ECOs). The returned State shares the
// engine's memory: serialize it before mutating the engine further.
func (e *Engine) ExportState() *State {
	out := *e.st
	out.ArcMean = e.arcMean
	out.ArcStd = e.arcStd
	return &out
}

// Design returns the design name carried through compilation.
func (e *Engine) Design() string { return e.st.Design }
