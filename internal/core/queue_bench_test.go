package core

// The paper argues (§III-E) that heap-based priority queues are a poor fit
// for the per-thread Top-K structure: maintaining heap order costs more than
// O(K^2) scans over a tiny fixed array. This file carries a test-only
// heap-based implementation of the unique-startpoint Top-K queue and the
// ablation benchmarks comparing it against Algorithm 2's linear queue.

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// heapEntry is one queue element of the heap-based variant.
type heapEntry struct {
	arr, mean, std float64
	sp             int32
}

// minHeap orders entries by ascending arrival so the root is the eviction
// candidate.
type minHeap []heapEntry

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].arr < h[j].arr }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// heapTopK is the heap-based unique-startpoint Top-K queue.
type heapTopK struct {
	k    int
	h    minHeap
	bySP map[int32]int // sp -> heap index (maintained on the side)
}

func newHeapTopK(k int) *heapTopK {
	return &heapTopK{k: k, bySP: make(map[int32]int, k)}
}

func (q *heapTopK) insert(a, m, s float64, sp int32) {
	if idx, ok := q.bySP[sp]; ok {
		if a <= q.h[idx].arr {
			return
		}
		q.h[idx] = heapEntry{a, m, s, sp}
		heap.Fix(&q.h, idx)
		q.reindex()
		return
	}
	if len(q.h) < q.k {
		heap.Push(&q.h, heapEntry{a, m, s, sp})
		q.reindex()
		return
	}
	if a <= q.h[0].arr {
		return
	}
	delete(q.bySP, q.h[0].sp)
	q.h[0] = heapEntry{a, m, s, sp}
	heap.Fix(&q.h, 0)
	q.reindex()
}

// reindex rebuilds the sp index after heap movement — the bookkeeping cost
// the paper's complexity argument is about.
func (q *heapTopK) reindex() {
	for i := range q.h {
		q.bySP[q.h[i].sp] = i
	}
}

// sorted returns the entries in descending arrival order.
func (q *heapTopK) sorted() []heapEntry {
	out := append([]heapEntry(nil), q.h...)
	sort.Slice(out, func(i, j int) bool { return out[i].arr > out[j].arr })
	return out
}

// stream builds a deterministic contribution stream shaped like real merge
// traffic: nStream contributions drawn from nSPs startpoints.
func stream(seed int64, nStream, nSPs int) []heapEntry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]heapEntry, nStream)
	for i := range out {
		m := 100 + 400*rng.Float64()
		s := 1 + 5*rng.Float64()
		out[i] = heapEntry{arr: m + 3*s, mean: m, std: s, sp: int32(rng.Intn(nSPs))}
	}
	return out
}

func TestHeapAndLinearQueuesAgree(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		in := stream(7, 500, 40)

		arr := make([]float64, k)
		mean := make([]float64, k)
		std := make([]float64, k)
		sps := make([]int32, k)
		clearQueue(arr, sps)
		hq := newHeapTopK(k)
		for _, e := range in {
			InsertTopK(arr, mean, std, sps, e.arr, e.mean, e.std, e.sp)
			hq.insert(e.arr, e.mean, e.std, e.sp)
		}
		want := hq.sorted()
		for i := range want {
			if sps[i] == noSP {
				t.Fatalf("k=%d: linear queue shorter than heap at %d", k, i)
			}
			if math.Abs(arr[i]-want[i].arr) > 1e-12 {
				t.Fatalf("k=%d slot %d: linear %v heap %v", k, i, arr[i], want[i].arr)
			}
		}
	}
}

func benchQueue(b *testing.B, k int, heapBased bool) {
	in := stream(11, 256, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if heapBased {
			q := newHeapTopK(k)
			for _, e := range in {
				q.insert(e.arr, e.mean, e.std, e.sp)
			}
		} else {
			arr := make([]float64, k)
			mean := make([]float64, k)
			std := make([]float64, k)
			sps := make([]int32, k)
			clearQueue(arr, sps)
			for _, e := range in {
				InsertTopK(arr, mean, std, sps, e.arr, e.mean, e.std, e.sp)
			}
		}
	}
}

// The paper's §III-E ablation: linear fixed-size lists vs heap-based queues.
func BenchmarkAblation_QueueLinear_K8(b *testing.B)   { benchQueue(b, 8, false) }
func BenchmarkAblation_QueueHeap_K8(b *testing.B)     { benchQueue(b, 8, true) }
func BenchmarkAblation_QueueLinear_K32(b *testing.B)  { benchQueue(b, 32, false) }
func BenchmarkAblation_QueueHeap_K32(b *testing.B)    { benchQueue(b, 32, true) }
func BenchmarkAblation_QueueLinear_K128(b *testing.B) { benchQueue(b, 128, false) }
func BenchmarkAblation_QueueHeap_K128(b *testing.B)   { benchQueue(b, 128, true) }
