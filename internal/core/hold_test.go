package core

import (
	"math"
	"testing"

	"insta/internal/circuitops"
)

// holdHarness builds a design with hold analysis enabled in the reference
// engine and re-extracts tables so the hold requirements are populated.
func holdHarness(t testing.TB, seed int64) *harness {
	t.Helper()
	h := buildHarness(t, testSpec(seed))
	h.ref.EnableHoldAnalysis()
	h.tab = circuitops.Extract(h.ref)
	return h
}

func TestHoldExactWithLargeK(t *testing.T) {
	h := holdHarness(t, 51)
	e, err := NewEngine(h.tab, Options{TopK: len(h.tab.SPs), Hold: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	got := e.EvalHoldSlacks()
	want := h.ref.HoldSlacks()
	if len(got) != len(want) {
		t.Fatalf("hold ep counts %d != %d", len(got), len(want))
	}
	for i := range want {
		if math.IsInf(want[i], 1) && math.IsInf(got[i], 1) {
			continue
		}
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("ep %d: INSTA hold %v != ref %v", i, got[i], want[i])
		}
	}
}

func TestHoldMetricsConsistent(t *testing.T) {
	h := holdHarness(t, 52)
	e, err := NewEngine(h.tab, Options{TopK: 4, Hold: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	slacks := e.EvalHoldSlacks()
	var wns, tns float64
	for _, s := range slacks {
		if math.IsInf(s, 0) {
			continue
		}
		if s < wns {
			wns = s
		}
		if s < 0 {
			tns += s
		}
	}
	if e.HoldWNS() != wns || e.HoldTNS() != tns {
		t.Errorf("HoldWNS/TNS %v/%v, want %v/%v", e.HoldWNS(), e.HoldTNS(), wns, tns)
	}
}

func TestHoldDisabledByDefault(t *testing.T) {
	h := holdHarness(t, 53)
	e, err := NewEngine(h.tab, Options{TopK: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.HoldEnabled() {
		t.Error("hold enabled without Options.Hold")
	}
}

func TestHoldSlackAboveSetupArrivalRelation(t *testing.T) {
	// The early corner can never exceed the late corner, so for a given
	// endpoint the early arrival that determines hold is <= the late arrival
	// that determines setup. Sanity-check via queue state.
	h := holdHarness(t, 54)
	e, err := NewEngine(h.tab, Options{TopK: 2, Hold: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	for _, p := range e.Endpoints() {
		for rf := 0; rf < 2; rf++ {
			lateArr, _, _, lateSP := e.TopEntries(rf, p)
			if lateSP[0] == noSP {
				continue
			}
			b := e.base(rf, p)
			if e.hold.sp[b] == noSP {
				continue
			}
			early := -e.hold.negArr[b]
			if early > lateArr[0]+1e-9 {
				t.Fatalf("pin %d rf %d: earliest arrival %v above latest %v", p, rf, early, lateArr[0])
			}
		}
	}
}

func TestRefHoldSlacksFinite(t *testing.T) {
	h := holdHarness(t, 55)
	hs := h.ref.HoldSlacks()
	finite := 0
	for i, s := range hs {
		if !math.IsInf(s, 0) {
			finite++
			continue
		}
		// +Inf only for primary outputs or fully false-pathed endpoints.
		_ = i
	}
	if finite == 0 {
		t.Fatal("no hold-checked endpoints")
	}
	if h.ref.HoldWNS() > 0 || h.ref.HoldTNS() > 0 {
		t.Error("hold WNS/TNS must be <= 0")
	}
}
