package core

import "math"

// EvalSlacks computes every endpoint's setup slack from the propagated Top-K
// arrivals: each retained startpoint is paired with its own required time
// (base requirement + multicycle periods + CPPR credit), and the minimum
// wins. False-path pairs are skipped. The result is cached and returned;
// untimed endpoints carry +Inf.
func (e *Engine) EvalSlacks() []float64 {
	e.evalSlacks()
	out := make([]float64, len(e.epSlack))
	copy(out, e.epSlack)
	return out
}

// evalSlacks is EvalSlacks without the defensive copy: it refreshes the
// cached e.epSlack in place. Zero-alloc paths (incremental commit, serving)
// call this and read the cache through Slacks().
func (e *Engine) evalSlacks() {
	sp := e.tracer.StartArg(kSlack, "endpoints", int64(len(e.epPin)))
	defer sp.End()
	k := e.opt.TopK
	e.kern(kSlack, -1, len(e.epPin), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := e.epPin[i]
			best := math.Inf(1)
			bestSP, bestRF := noSP, int8(0)
			for rf := 0; rf < 2; rf++ {
				b := e.base(rf, p)
				for kk := 0; kk < k; kk++ {
					sp := e.topSP[b+kk]
					if sp == noSP {
						break
					}
					adj := e.excLookup(e.spPin[sp], p)
					if adj.False {
						continue
					}
					req := e.epBase[rf][i] +
						float64(adj.CycleCount()-1)*e.period +
						e.credit(e.spNode[sp], e.epNode[i])
					if s := req - e.topArr[b+kk]; s < best {
						best, bestSP, bestRF = s, sp, int8(rf)
					}
				}
			}
			e.epSlack[i] = best
			e.epSP[i] = bestSP
			e.epRF[i] = bestRF
		}
	})
}

// Slacks returns the cached endpoint slacks from the last EvalSlacks call.
func (e *Engine) Slacks() []float64 { return e.epSlack }

// WNS returns the worst negative slack of the last evaluation (0 when
// nothing violates).
func (e *Engine) WNS() float64 {
	w := 0.0
	for _, s := range e.epSlack {
		if s < w {
			w = s
		}
	}
	return w
}

// TNS returns the total negative slack of the last evaluation.
func (e *Engine) TNS() float64 {
	t := 0.0
	for _, s := range e.epSlack {
		if s < 0 {
			t += s
		}
	}
	return t
}

// NumViolations counts endpoints with negative slack.
func (e *Engine) NumViolations() int {
	n := 0
	for _, s := range e.epSlack {
		if s < 0 {
			n++
		}
	}
	return n
}

// CriticalStartpoint returns the startpoint index and data transition behind
// endpoint i's last-evaluated slack (-1 when untimed).
func (e *Engine) CriticalStartpoint(i int) (sp int32, rf int) {
	return e.epSP[i], int(e.epRF[i])
}

// Run performs a full forward evaluation: Propagate followed by EvalSlacks.
func (e *Engine) Run() []float64 {
	e.Propagate()
	return e.EvalSlacks()
}
