package core

import (
	"math"
	"math/rand"
	"testing"

	"insta/internal/bench"
	"insta/internal/liberty"
	"insta/internal/mc"
)

// randomSpec derives a small randomized block from one seed: every knob that
// shapes the graph (group count, depth, width, cross-group fraction, clock
// period) is drawn from the seed so the differential sweep covers different
// topologies, not one design re-seeded.
func randomSpec(seed int64) bench.Spec {
	rng := rand.New(rand.NewSource(seed))
	return bench.Spec{
		Name: "difftest", Seed: seed, Tech: liberty.TechN3(),
		Groups:      2 + rng.Intn(3),
		FFsPerGroup: 5 + rng.Intn(8),
		Layers:      3 + rng.Intn(4),
		Width:       5 + rng.Intn(6),
		CrossFrac:   0.05 + 0.2*rng.Float64(),
		NumPIs:      2 + rng.Intn(4),
		NumPOs:      2 + rng.Intn(4),
		Period:      500 + float64(rng.Intn(600)),
		Uncertainty: 10,
		Die:         80,
	}
}

// TestDifferentialAgainstRefstaAndMC is the three-way differential check of
// the ISSUE: on randomized small blocks, the engine with TopK ≥ #startpoints
// must (a) reproduce the reference signoff engine's endpoint slacks exactly
// (float noise only) and (b) produce k=0 corner arrivals within Monte Carlo
// tolerance of the empirical 3-sigma quantiles — the POCV approximation
// error budget the mc package establishes.
func TestDifferentialAgainstRefstaAndMC(t *testing.T) {
	seeds := []int64{101, 202, 303, 404}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		h := buildHarness(t, randomSpec(seed))
		e, err := NewEngine(h.tab, Options{TopK: len(h.tab.SPs), Workers: 2, Grain: 16})
		if err != nil {
			t.Fatal(err)
		}
		got := e.Run()

		// (a) Exact vs the reference engine.
		want := h.ref.EndpointSlacks()
		if len(got) != len(want) {
			t.Fatalf("seed %d: ep count %d != %d", seed, len(got), len(want))
		}
		for i := range want {
			if math.IsInf(want[i], 1) && math.IsInf(got[i], 1) {
				continue
			}
			if math.Abs(want[i]-got[i]) > 1e-9 {
				t.Fatalf("seed %d ep %d: INSTA slack %v != ref %v", seed, i, got[i], want[i])
			}
		}

		// (b) Statistical vs Monte Carlo ground truth: the k=0 corner
		// arrival per endpoint transition against the empirical 3-sigma
		// quantile. POCV is a per-merge Gaussian approximation, so the
		// comparison is a tolerance band, not equality.
		quantiles, err := mc.EndpointQuantiles(h.tab, 400, seed)
		if err != nil {
			t.Fatal(err)
		}
		var relSum, relWorst float64
		pairs := 0
		for i, p := range e.Endpoints() {
			for rf := 0; rf < 2; rf++ {
				q := quantiles[i][rf]
				arr, _, _, sps := e.TopEntries(rf, p)
				if math.IsNaN(q) || sps[0] == noSP {
					if !math.IsNaN(q) || sps[0] != noSP {
						t.Fatalf("seed %d ep %d rf %d: timed/untimed disagreement (mc %v, insta sp %d)",
							seed, i, rf, q, sps[0])
					}
					continue
				}
				if q == 0 {
					continue
				}
				rel := math.Abs(arr[0]-q) / math.Abs(q)
				relSum += rel
				if rel > relWorst {
					relWorst = rel
				}
				pairs++
			}
		}
		if pairs == 0 {
			t.Fatalf("seed %d: no timed endpoint pairs to compare", seed)
		}
		avg := relSum / float64(pairs)
		t.Logf("seed %d: %d pairs, MC relErr avg=%.4f worst=%.4f", seed, pairs, avg, relWorst)
		if avg > 0.03 {
			t.Errorf("seed %d: average relative error %v above 3%%", seed, avg)
		}
		if relWorst > 0.08 {
			t.Errorf("seed %d: worst relative error %v above 8%%", seed, relWorst)
		}
	}
}
