package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/liberty"
	"insta/internal/num"
	"insta/internal/refsta"
)

// harness bundles a generated design with its reference engine and
// extraction tables.
type harness struct {
	b   *bench.Design
	ref *refsta.Engine
	tab *circuitops.Tables
}

func buildHarness(t testing.TB, spec bench.Spec) *harness {
	t.Helper()
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &harness{b: b, ref: ref, tab: circuitops.Extract(ref)}
}

func testSpec(seed int64) bench.Spec {
	return bench.Spec{
		Name: "coretest", Seed: seed, Tech: liberty.TechN3(),
		Groups: 3, FFsPerGroup: 8, Layers: 5, Width: 8,
		CrossFrac: 0.15, NumPIs: 4, NumPOs: 4,
		Period: 540, Uncertainty: 10, FalsePaths: 3, Multicycles: 2, Die: 100,
	}
}

// timedSlacks filters +Inf (fully false-pathed) endpoints out of both series.
func timedSlacks(ref, got []float64) (a, b []float64) {
	for i := range ref {
		if math.IsInf(ref[i], 0) || math.IsInf(got[i], 0) {
			continue
		}
		a = append(a, ref[i])
		b = append(b, got[i])
	}
	return a, b
}

// TestExactWithLargeK is the core claim: with K at least the number of
// startpoints, INSTA's Top-K propagation is exact and reproduces the
// reference engine's endpoint slacks bit-for-bit (up to float noise).
func TestExactWithLargeK(t *testing.T) {
	h := buildHarness(t, testSpec(21))
	k := len(h.tab.SPs) // unbounded in effect
	e, err := NewEngine(h.tab, Options{TopK: k, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Run()
	want := h.ref.EndpointSlacks()
	if len(got) != len(want) {
		t.Fatalf("ep count %d != %d", len(got), len(want))
	}
	for i := range want {
		if math.IsInf(want[i], 1) && math.IsInf(got[i], 1) {
			continue
		}
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("ep %d: INSTA %v != ref %v", i, got[i], want[i])
		}
	}
}

func TestUntimedEndpointsAgree(t *testing.T) {
	h := buildHarness(t, testSpec(22))
	e, err := NewEngine(h.tab, Options{TopK: len(h.tab.SPs), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Run()
	want := h.ref.EndpointSlacks()
	for i := range want {
		if math.IsInf(want[i], 1) != math.IsInf(got[i], 1) {
			t.Errorf("ep %d: untimed disagreement (ref %v, insta %v)", i, want[i], got[i])
		}
	}
}

// TestTopKTradeoff reproduces the Fig. 6 phenomenon in miniature: K=1 keeps
// high but imperfect correlation; growing K monotonically reduces worst
// mismatch until exactness.
func TestTopKTradeoff(t *testing.T) {
	h := buildHarness(t, testSpec(23))
	ref := h.ref.EndpointSlacks()
	worst := func(k int) float64 {
		e, err := NewEngine(h.tab, Options{TopK: k, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := e.Run()
		a, b := timedSlacks(ref, got)
		ms, err := num.Mismatch(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return ms.Worst
	}
	w1, w4, wAll := worst(1), worst(4), worst(len(h.tab.SPs))
	if wAll > 1e-9 {
		t.Errorf("exact K still mismatches: %v", wAll)
	}
	if w4 > w1+1e-9 {
		t.Errorf("K=4 worse than K=1: %v vs %v", w4, w1)
	}
	// K=1 must err pessimistic-or-equal per endpoint? Not necessarily
	// (credit of the kept startpoint may exceed the critical one's), but the
	// slack INSTA reports can never be *below* the true minimum by more than
	// the credit range; sanity: correlation stays high.
	e1, _ := NewEngine(h.tab, Options{TopK: 1, Workers: 1})
	got := e1.Run()
	a, b := timedSlacks(ref, got)
	r, err := num.Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.95 {
		t.Errorf("K=1 correlation %v too low", r)
	}
}

// TestK1SlackNeverBelowTruth: with K=1, INSTA keeps the max-arrival
// startpoint; the true endpoint slack minimizes over all startpoints, so the
// true slack can only be lower or equal when credits are equal... the credit
// term breaks strict ordering, so instead assert the documented bound: the
// K=1 slack differs from truth by at most the endpoint's maximum possible
// credit (2*nsigma*sqrt(max clock var)).
func TestK1SlackBoundedByCreditRange(t *testing.T) {
	h := buildHarness(t, testSpec(24))
	var maxVar float64
	for _, n := range h.tab.ClockNodes {
		if n.CumVar > maxVar {
			maxVar = n.CumVar
		}
	}
	bound := 2*h.tab.NSigma*math.Sqrt(maxVar) + 1e-9
	e, _ := NewEngine(h.tab, Options{TopK: 1, Workers: 1})
	got := e.Run()
	ref := h.ref.EndpointSlacks()
	a, b := timedSlacks(ref, got)
	for i := range a {
		if math.Abs(a[i]-b[i]) > bound {
			t.Fatalf("ep sample %d: |%v - %v| exceeds credit bound %v", i, a[i], b[i], bound)
		}
	}
}

func TestReannotationMatchesReference(t *testing.T) {
	// Commit a batch of resizes in the reference engine, re-extract its
	// delays, re-annotate INSTA, and require exact agreement again — the
	// "re-synchronize with PrimeTime-calculated arc delays" flow (§IV-B).
	h := buildHarness(t, testSpec(25))
	e, err := NewEngine(h.tab, Options{TopK: len(h.tab.SPs), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()

	cl := bench.Changelist(h.b, 5, 10)
	for _, r := range cl {
		if _, err := h.ref.ResizeCell(r.Cell, r.NewLib); err != nil {
			t.Fatal(err)
		}
	}
	h.ref.UpdateTimingFull()
	fresh := circuitops.Extract(h.ref)
	for i, a := range fresh.Arcs {
		e.SetArcDelay(int32(i), liberty.Rise, num.Dist{Mean: a.MeanRise, Std: a.StdRise})
		e.SetArcDelay(int32(i), liberty.Fall, num.Dist{Mean: a.MeanFall, Std: a.StdFall})
	}
	got := e.Run()
	want := h.ref.EndpointSlacks()
	for i := range want {
		if math.IsInf(want[i], 1) && math.IsInf(got[i], 1) {
			continue
		}
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("ep %d after re-annotation: %v != %v", i, got[i], want[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	h := buildHarness(t, testSpec(26))
	es, _ := NewEngine(h.tab, Options{TopK: 8, Workers: 1})
	ep, _ := NewEngine(h.tab, Options{TopK: 8, Workers: 4})
	s := es.Run()
	p := ep.Run()
	for i := range s {
		if s[i] != p[i] {
			t.Fatalf("ep %d: serial %v != parallel %v", i, s[i], p[i])
		}
	}
}

func TestWNSTNSConsistency(t *testing.T) {
	h := buildHarness(t, testSpec(27))
	e, _ := NewEngine(h.tab, Options{TopK: 8, Workers: 1})
	slacks := e.Run()
	var wns, tns float64
	vio := 0
	for _, s := range slacks {
		if s < wns {
			wns = s
		}
		if s < 0 {
			tns += s
			vio++
		}
	}
	if e.WNS() != wns || e.TNS() != tns || e.NumViolations() != vio {
		t.Errorf("metrics: WNS %v/%v TNS %v/%v vio %d/%d",
			e.WNS(), wns, e.TNS(), tns, e.NumViolations(), vio)
	}
}

func TestRejectsBadOptions(t *testing.T) {
	h := buildHarness(t, testSpec(28))
	if _, err := NewEngine(h.tab, Options{TopK: 0}); err == nil {
		t.Error("TopK=0 accepted")
	}
	h.tab.Arcs[0].To = -3
	if _, err := NewEngine(h.tab, Options{TopK: 4}); err == nil {
		t.Error("corrupt tables accepted")
	}
}

// --- Top-K queue unit properties (Algorithm 2) ---

type qEntry struct {
	arr float64
	sp  int32
}

// bruteTopK computes the reference answer: per sp keep the max arrival, then
// take the K largest.
func bruteTopK(entries []qEntry, k int) []qEntry {
	best := map[int32]float64{}
	for _, e := range entries {
		if v, ok := best[e.sp]; !ok || e.arr > v {
			best[e.sp] = e.arr
		}
	}
	out := make([]qEntry, 0, len(best))
	for sp, a := range best {
		out = append(out, qEntry{arr: a, sp: sp})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].arr != out[j].arr {
			return out[i].arr > out[j].arr
		}
		return out[i].sp < out[j].sp
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestInsertTopKMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(6)
		n := rng.Intn(40)
		arr := make([]float64, k)
		mean := make([]float64, k)
		std := make([]float64, k)
		sps := make([]int32, k)
		clearQueue(arr, sps)
		var fed []qEntry
		for i := 0; i < n; i++ {
			a := math.Round(rng.Float64()*1000) / 10 // coarse grid avoids fp ties
			sp := int32(rng.Intn(8))
			fed = append(fed, qEntry{arr: a, sp: sp})
			InsertTopK(arr, mean, std, sps, a, a, 0, sp)
		}
		want := bruteTopK(fed, k)
		// Collect non-empty queue entries.
		var got []qEntry
		for i := 0; i < k; i++ {
			if sps[i] == noSP {
				break
			}
			got = append(got, qEntry{arr: arr[i], sp: sps[i]})
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			// Arrival values must match; at equal arrivals the kept sp may
			// legitimately differ from brute force's tie-break.
			if got[i].arr != want[i].arr {
				return false
			}
		}
		// Descending order and unique startpoints.
		seen := map[int32]bool{}
		for i, g := range got {
			if i > 0 && got[i-1].arr < g.arr {
				return false
			}
			if seen[g.sp] {
				return false
			}
			seen[g.sp] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInsertTopKUpdateExisting(t *testing.T) {
	arr := make([]float64, 3)
	mean := make([]float64, 3)
	std := make([]float64, 3)
	sps := make([]int32, 3)
	clearQueue(arr, sps)
	InsertTopK(arr, mean, std, sps, 10, 10, 0, 1)
	InsertTopK(arr, mean, std, sps, 20, 20, 0, 2)
	// Update sp 1 upward past sp 2: must bubble to front.
	InsertTopK(arr, mean, std, sps, 30, 30, 0, 1)
	if sps[0] != 1 || arr[0] != 30 || sps[1] != 2 || arr[1] != 20 {
		t.Fatalf("queue after bubble: arr=%v sps=%v", arr, sps)
	}
	// Downward "update" must be ignored.
	InsertTopK(arr, mean, std, sps, 5, 5, 0, 1)
	if arr[0] != 30 {
		t.Fatal("smaller arrival overwrote existing startpoint")
	}
}

func TestInsertTopKEviction(t *testing.T) {
	arr := make([]float64, 2)
	mean := make([]float64, 2)
	std := make([]float64, 2)
	sps := make([]int32, 2)
	clearQueue(arr, sps)
	InsertTopK(arr, mean, std, sps, 10, 10, 0, 1)
	InsertTopK(arr, mean, std, sps, 20, 20, 0, 2)
	InsertTopK(arr, mean, std, sps, 5, 5, 0, 3) // below min: rejected
	if sps[0] != 2 || sps[1] != 1 {
		t.Fatalf("unexpected queue %v", sps)
	}
	InsertTopK(arr, mean, std, sps, 15, 15, 0, 4) // evicts sp 1
	if sps[0] != 2 || sps[1] != 4 || arr[1] != 15 {
		t.Fatalf("eviction failed: arr=%v sps=%v", arr, sps)
	}
}

func TestQueueInvariantsAfterPropagation(t *testing.T) {
	// After a full forward pass, every pin's queue must be packed (no gaps),
	// descending by arrival, with unique startpoints, and every arrival must
	// equal mean + nSigma*std of its own entry.
	h := buildHarness(t, testSpec(41))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	for p := int32(0); p < int32(e.NumPins()); p++ {
		for rf := 0; rf < 2; rf++ {
			arr, mean, std, sps := e.TopEntries(rf, p)
			seenEmpty := false
			seen := map[int32]bool{}
			for k := range arr {
				if sps[k] == noSP {
					seenEmpty = true
					continue
				}
				if seenEmpty {
					t.Fatalf("pin %d rf %d: gap before slot %d", p, rf, k)
				}
				if k > 0 && sps[k-1] != noSP && arr[k-1] < arr[k] {
					t.Fatalf("pin %d rf %d: not descending at %d", p, rf, k)
				}
				if seen[sps[k]] {
					t.Fatalf("pin %d rf %d: duplicate sp %d", p, rf, sps[k])
				}
				seen[sps[k]] = true
				want := mean[k] + 3*std[k]
				if math.Abs(arr[k]-want) > 1e-9 {
					t.Fatalf("pin %d rf %d slot %d: arrival %v != mean+3sigma %v", p, rf, k, arr[k], want)
				}
			}
		}
	}
}

func TestRunIdempotent(t *testing.T) {
	// Propagation must be a pure function of the annotations: running twice
	// yields identical slacks.
	h := buildHarness(t, testSpec(42))
	e, _ := NewEngine(h.tab, Options{TopK: 4, Workers: 1})
	a := append([]float64(nil), e.Run()...)
	b := e.Run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ep %d: %v then %v", i, a[i], b[i])
		}
	}
}

func TestPropagateIncrementalMatchesFull(t *testing.T) {
	h := buildHarness(t, testSpec(61))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()

	// Perturb a scattered set of arcs, run incrementally, and compare to a
	// from-scratch full propagation on a twin engine.
	twin, _ := NewEngine(h.tab, Options{TopK: 6, Workers: 1})
	var touched []int32
	for arc := int32(3); arc < int32(e.NumArcs()); arc += 97 {
		for rf := 0; rf < 2; rf++ {
			d := e.ArcDelay(arc, rf)
			d.Mean *= 1.1
			d.Std *= 1.05
			e.SetArcDelay(arc, rf, d)
			twin.SetArcDelay(arc, rf, d)
		}
		touched = append(touched, arc)
	}
	e.PropagateIncremental(touched)
	got := e.EvalSlacks()
	want := twin.Run()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ep %d: incremental %v != full %v", i, got[i], want[i])
		}
	}
}

func TestPropagateIncrementalWithHold(t *testing.T) {
	h := holdHarness(t, 62)
	e, err := NewEngine(h.tab, Options{TopK: 4, Hold: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	twin, _ := NewEngine(h.tab, Options{TopK: 4, Hold: true, Workers: 1})
	arc := int32(7)
	for rf := 0; rf < 2; rf++ {
		d := e.ArcDelay(arc, rf)
		d.Mean += 15
		e.SetArcDelay(arc, rf, d)
		twin.SetArcDelay(arc, rf, d)
	}
	e.PropagateIncremental([]int32{arc})
	gotSetup := e.EvalSlacks()
	gotHold := e.EvalHoldSlacks()
	twin.Run()
	wantSetup := twin.EvalSlacks()
	wantHold := twin.EvalHoldSlacks()
	for i := range wantSetup {
		if gotSetup[i] != wantSetup[i] {
			t.Fatalf("setup ep %d: %v != %v", i, gotSetup[i], wantSetup[i])
		}
		if !(math.IsInf(gotHold[i], 1) && math.IsInf(wantHold[i], 1)) && gotHold[i] != wantHold[i] {
			t.Fatalf("hold ep %d: %v != %v", i, gotHold[i], wantHold[i])
		}
	}
}

func TestPropagateIncrementalEmpty(t *testing.T) {
	h := buildHarness(t, testSpec(63))
	e, _ := NewEngine(h.tab, Options{TopK: 4, Workers: 1})
	before := append([]float64(nil), e.Run()...)
	e.PropagateIncremental(nil)
	after := e.EvalSlacks()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("empty incremental changed state")
		}
	}
}
