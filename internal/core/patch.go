package core

// Patched recompilation: the append-only fast path under structural ECO
// sessions. CompileIncremental is already localized in its levelize phase,
// but it still rebuilds every O(arcs) slab of the State from the edited
// tables — fan-in CSR, annotation planes, fan-out CSR — which dominates the
// cost of a small edit on a large design. For the batches the optimizer loop
// actually produces (buffer insertions and re-annotations: arcs appended or
// rewritten in place, never removed) the previous compiled state differs
// from the next one only in the rows the batch touched, so this file patches
// those rows instead: per-arc slabs are extended and overwritten at the
// changed ids, and the two CSRs are repaired segment by segment for just the
// pins whose adjacency changed. The repaired segments are re-sorted by arc
// id, which is exactly the order the full compile's ascending arc scan
// produces — so the patched State is bit-identical, slab for slab, to
// Compile of the same edited tables (the topo differential suite pins this
// against the cold oracle).

import (
	"fmt"
	"slices"

	"insta/internal/circuitops"
	"insta/internal/levelize"
	"insta/internal/liberty"
)

// errPatchShape is returned — before anything is mutated — when the edit is
// outside the append-only shape this path handles (e.g. an existing pin's
// arc count changed, which only arc removal can cause). Callers fall back to
// CompileIncremental.
var errPatchShape = fmt.Errorf("core: edit shape not patchable; use CompileIncremental")

// CompileIncrementalPatched recompiles the edited tables t against prev by
// patching prev's slabs rather than rebuilding them, for batches that only
// appended arcs and pins or rewrote arc rows in place (topo.Result.Remap ==
// nil). changed lists every arc id — in t's id space — whose row differs
// from the row prev was compiled with, including all appended ids; seeds is
// the usual re-levelization seed set (pins whose fan-in changed).
//
// owned declares that prev is private to the caller (the typical case: the
// previous patched state of the same session) and may be cannibalized — its
// slabs are extended and rewritten in place, so prev must not be used again.
// With owned=false the touched slabs are copied first and prev stays intact
// (the session's first edit patches the shared base state this way).
//
// All shape violations are detected before the first write; the only
// post-mutation failure is a levelize cycle, which an append/rewrite batch
// cannot introduce (no edge is ever added between two pre-existing pins
// except via a fresh intermediate pin).
func CompileIncrementalPatched(t *circuitops.Tables, prev *State, seeds, changed []int32, owned bool) (*State, levelize.IncStats, error) {
	var is levelize.IncStats
	if prev == nil {
		return nil, is, fmt.Errorf("core: CompileIncrementalPatched requires a previous state")
	}
	nArcs := len(t.Arcs)
	prevArcs := len(prev.ArcFrom)
	if nArcs < prevArcs || t.NumPins < prev.NumPins {
		return nil, is, errPatchShape
	}
	newPins := t.NumPins - prev.NumPins

	chg := append(make([]int32, 0, len(changed)), changed...)
	slices.Sort(chg)
	inChanged := make(map[int32]bool, len(chg))
	for _, c := range chg {
		if c < 0 || int(c) >= nArcs || inChanged[c] {
			return nil, is, errPatchShape
		}
		inChanged[c] = true
	}
	for i := prevArcs; i < nArcs; i++ {
		if !inChanged[int32(i)] {
			return nil, is, errPatchShape
		}
	}

	// Per-pin adjacency deltas. Existing pins must come out net-zero on both
	// sides (append/rewrite batches preserve arc counts everywhere except on
	// appended pins); the appended pins' counts extend the CSRs.
	inDelta := make(map[int32]int32)
	outDelta := make(map[int32]int32)
	newInCount := make([]int32, newPins)
	newOutCount := make([]int32, newPins)
	addIn := make(map[int32][]int32)  // changed arcs by new To, ascending (chg is sorted)
	addOut := make(map[int32][]int32) // changed arcs by new From, ascending
	for _, c := range chg {
		row := &t.Arcs[c]
		if row.From < 0 || int(row.From) >= t.NumPins || row.To < 0 || int(row.To) >= t.NumPins {
			return nil, is, errPatchShape
		}
		addIn[row.To] = append(addIn[row.To], c)
		addOut[row.From] = append(addOut[row.From], c)
		if int(row.To) >= prev.NumPins {
			newInCount[int(row.To)-prev.NumPins]++
		} else {
			inDelta[row.To]++
		}
		if int(row.From) >= prev.NumPins {
			newOutCount[int(row.From)-prev.NumPins]++
		} else {
			outDelta[row.From]++
		}
		if int(c) < prevArcs {
			// The pre-edit endpoints necessarily address pre-existing pins.
			inDelta[prev.ArcTo[c]]--
			outDelta[prev.ArcFrom[c]]--
		}
	}
	for _, d := range inDelta {
		if d != 0 {
			return nil, is, errPatchShape
		}
	}
	for _, d := range outDelta {
		if d != 0 {
			return nil, is, errPatchShape
		}
	}
	sumIn, sumOut := 0, 0
	for _, c := range newInCount {
		sumIn += int(c)
	}
	for _, c := range newOutCount {
		sumOut += int(c)
	}
	if prevArcs+sumIn != nArcs || prevArcs+sumOut != nArcs {
		return nil, is, errPatchShape
	}

	// Capture the pre-edit segments of every affected existing pin before any
	// in-place rewrite (with owned=true the source slabs are about to change
	// under us). A pin is affected when a changed arc attaches to or detaches
	// from it — or keeps it but changes content (rewritten in place).
	type inSlot struct {
		arc, from int32
		sense     uint8
	}
	oldIn := make(map[int32][]inSlot, len(inDelta))
	for p := range inDelta {
		seg := make([]inSlot, 0, prev.FaninStart[p+1]-prev.FaninStart[p])
		for pos := prev.FaninStart[p]; pos < prev.FaninStart[p+1]; pos++ {
			seg = append(seg, inSlot{prev.FaninArc[pos], prev.FaninFrom[pos], prev.FaninSense[pos]})
		}
		oldIn[p] = seg
	}
	type outSlot struct {
		adj, arc int32
	}
	oldOut := make(map[int32][]outSlot, len(outDelta))
	for p := range outDelta {
		seg := make([]outSlot, 0, prev.FoStart[p+1]-prev.FoStart[p])
		for pos := prev.FoStart[p]; pos < prev.FoStart[p+1]; pos++ {
			seg = append(seg, outSlot{prev.FoAdj[pos], prev.FoArc[pos]})
		}
		oldOut[p] = seg
	}

	// From here on the state is mutated (or copied, owned=false); no error
	// can be reported short of the unreachable levelize cycle.
	st := new(State)
	*st = *prev
	st.Design, st.NumPins, st.Period, st.NSigma = t.Design, t.NumPins, t.Period, t.NSigma

	for rf := 0; rf < 2; rf++ {
		st.ArcMean[rf] = extendSlab(prev.ArcMean[rf], nArcs, owned)
		st.ArcStd[rf] = extendSlab(prev.ArcStd[rf], nArcs, owned)
	}
	st.ArcKind = extendSlab(prev.ArcKind, nArcs, owned)
	st.ArcCell = extendSlab(prev.ArcCell, nArcs, owned)
	st.ArcNet = extendSlab(prev.ArcNet, nArcs, owned)
	st.ArcFrom = extendSlab(prev.ArcFrom, nArcs, owned)
	st.ArcTo = extendSlab(prev.ArcTo, nArcs, owned)
	for _, c := range chg {
		a := &t.Arcs[c]
		st.ArcMean[liberty.Rise][c], st.ArcStd[liberty.Rise][c] = a.MeanRise, a.StdRise
		st.ArcMean[liberty.Fall][c], st.ArcStd[liberty.Fall][c] = a.MeanFall, a.StdFall
		st.ArcKind[c], st.ArcCell[c], st.ArcNet[c] = a.Kind, a.Cell, a.Net
		st.ArcFrom[c], st.ArcTo[c] = a.From, a.To
	}

	// Per-pin tables: appended pins are neither startpoints nor endpoints.
	st.SpOfPin = extendSlab(prev.SpOfPin, t.NumPins, owned)
	st.EpOfPin = extendSlab(prev.EpOfPin, t.NumPins, owned)
	for p := prev.NumPins; p < t.NumPins; p++ {
		st.SpOfPin[p], st.EpOfPin[p] = -1, -1
	}

	// Fan-in CSR: existing pins keep their slot ranges (net-zero deltas), so
	// the start array only gains the appended pins' prefix sums; affected
	// segments are rebuilt sorted by arc id — the order the full compile's
	// ascending arc scan yields.
	st.FaninStart = extendSlab(prev.FaninStart, t.NumPins+1, owned)
	for p := prev.NumPins; p < t.NumPins; p++ {
		st.FaninStart[p+1] = st.FaninStart[p] + newInCount[p-prev.NumPins]
	}
	st.FaninArc = extendSlab(prev.FaninArc, nArcs, owned)
	st.FaninFrom = extendSlab(prev.FaninFrom, nArcs, owned)
	st.FaninSense = extendSlab(prev.FaninSense, nArcs, owned)
	inScratch := make([]inSlot, 0, 16)
	writeIn := func(p int32, kept []inSlot) {
		merged := inScratch[:0]
		for _, s := range kept {
			if !inChanged[s.arc] {
				merged = append(merged, s)
			}
		}
		for _, c := range addIn[p] {
			merged = append(merged, inSlot{c, t.Arcs[c].From, t.Arcs[c].Sense})
		}
		slices.SortFunc(merged, func(a, b inSlot) int { return int(a.arc - b.arc) })
		pos := st.FaninStart[p]
		for _, s := range merged {
			st.FaninArc[pos], st.FaninFrom[pos], st.FaninSense[pos] = s.arc, s.from, s.sense
			pos++
		}
		inScratch = merged[:0]
	}
	for p := range inDelta {
		writeIn(p, oldIn[p])
	}
	for p := prev.NumPins; p < t.NumPins; p++ {
		writeIn(int32(p), nil)
	}

	// Fan-out CSR, symmetric (slot content is the arc's head pin + arc id).
	st.FoStart = extendSlab(prev.FoStart, t.NumPins+1, owned)
	for p := prev.NumPins; p < t.NumPins; p++ {
		st.FoStart[p+1] = st.FoStart[p] + newOutCount[p-prev.NumPins]
	}
	st.FoAdj = extendSlab(prev.FoAdj, nArcs, owned)
	st.FoArc = extendSlab(prev.FoArc, nArcs, owned)
	outScratch := make([]outSlot, 0, 16)
	writeOut := func(p int32, kept []outSlot) {
		merged := outScratch[:0]
		for _, s := range kept {
			if !inChanged[s.arc] {
				merged = append(merged, s)
			}
		}
		for _, c := range addOut[p] {
			merged = append(merged, outSlot{t.Arcs[c].To, c})
		}
		slices.SortFunc(merged, func(a, b outSlot) int { return int(a.arc - b.arc) })
		pos := st.FoStart[p]
		for _, s := range merged {
			st.FoAdj[pos], st.FoArc[pos] = s.adj, s.arc
			pos++
		}
		outScratch = merged[:0]
	}
	for p := range outDelta {
		writeOut(p, oldOut[p])
	}
	for p := prev.NumPins; p < t.NumPins; p++ {
		writeOut(int32(p), nil)
	}

	// Localized re-levelization over the patched CSRs — no adjacency rebuild,
	// no full-arc floor scan.
	prevLv := &levelize.Result{
		Level:      prev.LvLevel,
		NumLevels:  prev.NumLevels,
		Order:      prev.LvOrder,
		LevelStart: prev.LvLevelStart,
	}
	lv, is, err := levelize.IncrementalCSR(t.NumPins, st.FoStart, st.FoAdj, st.FaninStart, st.FaninFrom, prevLv, seeds)
	if err != nil {
		return nil, is, err
	}
	st.NumLevels = lv.NumLevels
	st.LvLevel, st.LvOrder, st.LvLevelStart = lv.Level, lv.Order, lv.LevelStart

	// SP/EP rows, clock network and exception rows are untouched by
	// append/rewrite batches and stay shared via the struct copy above.
	return st, is, nil
}

// extendSlab returns s grown to length n: a fresh copy when the source must
// stay intact (owned=false), in place — reusing capacity when possible —
// when the caller owns it. Appended entries are unspecified; every patch
// site writes them explicitly.
func extendSlab[T any](s []T, n int, owned bool) []T {
	if !owned {
		c := make([]T, n)
		copy(c, s)
		return c
	}
	if cap(s) >= n {
		return s[:n]
	}
	// Grow with slack so a session applying many small batches reallocates
	// each slab O(log) times, not per edit.
	c := make([]T, n, n+n/8+16)
	copy(c, s)
	return c
}
