// Package core implements INSTA: the ultra-fast, differentiable, statistical
// timing propagation engine of the paper. It is initialized once from a
// reference signoff engine through the circuitops tables (arc delay
// distributions, SP/EP attributes, clock network, exceptions) and then
// performs:
//
//   - a forward pass: level-parallel Top-K statistical arrival propagation
//     with unique startpoints (Algorithms 1 and 2) handling rise/fall,
//     unateness and CPPR;
//   - endpoint slack / WNS / TNS evaluation with per-startpoint required
//     times and timing exceptions;
//   - a backward pass: Log-Sum-Exp-softened gradient backpropagation
//     (Eqs. 4-6) that yields the "timing gradient" of every arc.
//
// The paper's CUDA kernels map here to level-synchronous loops executed by a
// goroutine worker pool over structure-of-arrays CSR data: one "virtual
// thread" per output pin per level. Input pins (single fan-in) take the
// vectorized fast path, as in the paper (§III-D).
package core

import (
	"fmt"
	"math"

	"insta/internal/circuitops"
	"insta/internal/levelize"
	"insta/internal/netlist"
	"insta/internal/num"
	"insta/internal/obs"
	"insta/internal/sched"
	"insta/internal/sdc"
)

// Options configures an INSTA engine.
type Options struct {
	// TopK is the number of unique-startpoint arrival distributions kept per
	// pin per transition. 1 disables CPPR resolution (fastest, least
	// accurate); the paper uses 32 for signoff correlation and shows 128.
	TopK int
	// Hold additionally propagates early (minimum) arrivals and enables
	// EvalHoldSlacks — the hold-analysis extension beyond the paper's
	// setup-only scope. Off by default.
	Hold bool
	// Tau is the Log-Sum-Exp temperature of the differentiable backward pass
	// (paper Eq. 4; the sizing experiments use 0.01).
	Tau float64
	// Workers is the participant count of the engine's persistent scheduler
	// pool (the launching goroutine counts as one); 0 means runtime.NumCPU().
	Workers int
	// Grain is the scheduler chunk size in pins/spans; 0 means
	// sched.DefaultGrain. A kernel launch of at most one grain runs inline.
	Grain int
	// LegacySpawn bypasses the persistent pool and dispatches every kernel
	// with the seed strategy (fresh goroutines per launch, fixed even splits,
	// n < 256 serial cliff). Ablation/benchmark knob — see sched.Spawn.
	LegacySpawn bool
	// Tracer, when non-nil, records hierarchical phase/kernel/level spans for
	// every engine pass (see internal/obs). A nil or disabled tracer costs
	// nothing on the hot paths.
	Tracer *obs.Tracer
}

// DefaultOptions mirrors the paper's Table I configuration.
func DefaultOptions() Options {
	return Options{TopK: 32, Tau: 0.01}
}

// noSP marks an empty Top-K queue slot.
const noSP = int32(-1)

// Engine is an initialized INSTA session. All heavy state lives in flat
// structure-of-arrays buffers, the CPU analogue of the paper's GPU tensors.
type Engine struct {
	opt     Options
	st      *State // compiled state the engine was built over (ExportState)
	numPins int
	capPins int // tensor row stride in pins: >= numPins; the surplus is
	// headroom so a structural reseed can append pins without relocating
	// the rf=1 tensor blocks (see ReseedStructural)
	period float64
	nSigma float64

	// Fan-in CSR over pins: entries faninStart[p]..faninStart[p+1] index the
	// incoming arcs of pin p (the paper's outPin_parent_start array, Fig. 3).
	faninStart []int32
	faninArc   []int32
	faninFrom  []int32
	faninSense []uint8

	// Arc annotations, indexed by the extraction arc id, per output rf.
	arcMean [2][]float64
	arcStd  [2][]float64
	arcKind []uint8
	arcCell []int32 // owning cell for cell arcs, -1 otherwise
	arcNet  []int32 // net id for net arcs, -1 otherwise
	arcFrom []int32
	arcTo   []int32

	lv *levelize.Result

	// Startpoints / endpoints.
	spPin   []int32
	spNode  []int32
	spMean  []float64
	spStd   []float64
	spOfPin []int32 // per pin: SP index or -1
	epPin   []int32
	epNode  []int32
	epBase  [2][]float64 // base required time per data transition
	epOfPin []int32      // per pin: endpoint index or -1 (overlay read path)

	// Clock network (for CPPR credit).
	clkParent []int32
	clkCumVar []float64
	clkDepth  []int32

	exc *sdc.ExceptionTable

	// Top-K state, flattened: index ((rf*numPins)+pin)*K + k.
	topArr  []float64
	topMean []float64
	topStd  []float64
	topSP   []int32

	// Differentiable state (allocated on first Backward call). The backward
	// pass is two-phase per level so that accumulation order is fixed by the
	// CSR layout, never by goroutine scheduling: each pin *scatters* weighted
	// gradient into per-arc flow slots it exclusively owns (it is every fan-in
	// arc's unique `to` pin), and *gathers* its own gradient from its fan-out
	// arcs' slots in CSR order. Results are bit-identical for any Workers.
	gradArr    [2][]float64 // dLoss/d(arrival mean at pin), gathered
	gradArrStd [2][]float64 // dLoss/d(arrival sigma at pin), gathered
	seedMean   [2][]float64 // per-pin loss seeds (endpoint injection)
	seedStd    [2][]float64
	flowMean   [2][]float64 // per-arc gradient flow, indexed [parent rf][arc]
	flowStd    [2][]float64
	gradMean   [2][]float64 // dLoss/d(arc delay mean) — the paper's timing gradient
	gradStd    [2][]float64 // dLoss/d(arc delay sigma)

	epSlack []float64
	epSP    []int32 // critical startpoint per endpoint (last evaluation)
	epRF    []int8  // critical transition per endpoint

	hold *holdState // early-arrival state (Options.Hold)

	pinOwner []int32   // lazily built pin→cell mapping (see grads.go)
	arcStage []int32   // lazily built arc→owning stage cell (see grads.go)
	stageAcc []float64 // per-cell accumulation scratch for StageGradients

	// Lazily built fan-out CSR (incremental propagation and backward gather):
	// slot i holds destination pin foAdj[i] reached through arc foArc[i].
	foStart, foAdj, foArc []int32

	pool   *sched.Pool // persistent kernel scheduler, created with the engine
	stats  *sched.Stats
	tracer *obs.Tracer // phase/level span recording; nil is a free no-op

	inc  *propScratch // reusable incremental-propagation state (lazily built)
	plan []levelGroup // fused-level launch plan (lazily built; see levelPlan)
}

// levelGroup is a run of consecutive timing levels dispatched as one kernel
// launch. Groups wider than one level always fit within the pool's serial
// cutoff, so the fused launch is guaranteed to run inline on the caller in
// level order — inter-level dependencies hold and the result stays
// bit-identical to per-level launches, while deep-but-narrow graph regions
// stop paying a launch (and tracer span) per near-empty level.
type levelGroup struct {
	lo, hi int // levels [lo, hi)
	spans  int // total pins across the group
}

// levelPlan lazily builds the fused-level launch plan. Merging is skipped
// under LegacySpawn to keep that ablation's launch pattern identical to the
// seed strategy.
func (e *Engine) levelPlan() []levelGroup {
	if e.plan != nil {
		return e.plan
	}
	cutoff := 0
	if !e.opt.LegacySpawn {
		cutoff = e.pool.SerialCutoff()
	}
	plan := make([]levelGroup, 0, e.lv.NumLevels)
	for l := 0; l < e.lv.NumLevels; l++ {
		n := len(e.lv.Nodes(l))
		if len(plan) > 0 {
			g := &plan[len(plan)-1]
			if g.spans+n <= cutoff {
				g.hi, g.spans = l+1, g.spans+n
				continue
			}
		}
		plan = append(plan, levelGroup{lo: l, hi: l + 1, spans: n})
	}
	e.plan = plan
	return plan
}

// propScratch is the reusable state of cone-limited re-propagation: per-level
// wavefront buckets, the queued-pin set, per-bucket change flags, and one
// queue snapshot per pool participant (indexed by the scheduler's participant
// id, so kernels never allocate or share a snapshot). The engine owns one for
// PropagateIncremental — incremental propagation mutates base state, so calls
// are exclusive — while every Overlay owns its own, because many overlays may
// evaluate concurrently over one frozen base.
type propScratch struct {
	buckets [][]int32
	// Queued-pin set as an epoch-stamped slice: queuedAt[p] == stamp means p
	// is in a bucket this call. Reset is O(1) (bump the stamp), membership is
	// one indexed load — a wavefront covering tens of thousands of pins pays
	// no map overhead on its hottest dedupe check.
	queuedAt []uint32
	stamp    uint32
	changed  []bool
	snaps    []snapshotBuf

	// Persistent kernel binding (see PropagateIncremental): the closure is
	// created once and reads the current bucket through this field, so the
	// steady-state wavefront launches nothing on the heap.
	bucket []int32
	kernFn func(id, lo, hi int)
}

func newPropScratch(levels, pins, width, k int) *propScratch {
	s := &propScratch{
		buckets:  make([][]int32, levels),
		queuedAt: make([]uint32, pins),
		stamp:    1,
		snaps:    make([]snapshotBuf, width),
	}
	for i := range s.snaps {
		s.snaps[i] = snapshotBuf{
			arr:  make([]float64, 2*k),
			mean: make([]float64, 2*k),
			std:  make([]float64, 2*k),
			sp:   make([]int32, 2*k),
		}
	}
	return s
}

// reset empties the wavefront state for reuse, keeping all capacity. The
// queued set clears by bumping the stamp; on the (2^32 calls) wraparound the
// slice is scrubbed so stale stamps can never read as queued.
func (s *propScratch) reset() {
	for i := range s.buckets {
		s.buckets[i] = s.buckets[i][:0]
	}
	s.stamp++
	if s.stamp == 0 {
		clear(s.queuedAt)
		s.stamp = 1
	}
}

// markQueued reports whether p was already queued this call, marking it
// queued either way.
func (s *propScratch) markQueued(p int32) bool {
	if s.queuedAt[p] == s.stamp {
		return true
	}
	s.queuedAt[p] = s.stamp
	return false
}

// NewEngine initializes INSTA from extracted circuitops tables — the
// one-time initialization of Fig. 1/Fig. 2. It is exactly Compile (build the
// flat compiled state: CSR topology, level schedule, SP/EP tables, clock
// depths, fan-out CSR) followed by NewEngineFromState (working tensors),
// which is what makes warm-started engines (internal/snap) bit-identical to
// cold-built ones: both run the same second half over the same slabs.
func NewEngine(t *circuitops.Tables, opt Options) (*Engine, error) {
	if opt.TopK < 1 {
		return nil, fmt.Errorf("core: TopK must be >= 1, got %d", opt.TopK)
	}
	build := opt.Tracer.StartArg("engine-build", "pins", int64(t.NumPins))
	defer build.End()
	st, err := compile(t, build, nil)
	if err != nil {
		return nil, err
	}
	return newEngineFromState(st, opt)
}

// Kernel tags for scheduler instrumentation (Engine.KernelStats).
const (
	kForward     = "forward"
	kHold        = "hold"
	kBackward    = "backward"
	kSlack       = "slack"
	kHoldSlack   = "hold-slack"
	kIncremental = "incremental"
	// Overlay session kernels (overlay.go): cone-limited recompute and
	// changed-endpoint slack evaluation over a frozen base engine.
	KernelOverlay      = "overlay"
	KernelOverlaySlack = "overlay-slack"
	// KernelForward is the full forward-propagation tag, exported so serving
	// tests can assert a session evaluation never triggered a full propagate.
	KernelForward = kForward
)

// kern dispatches one kernel launch over [0, n) through the engine's
// persistent pool (or the legacy per-launch spawn path when configured). tag
// and level identify the launch to the attached stats collector; level is -1
// for launches not tied to the level schedule (endpoint sweeps).
func (e *Engine) kern(tag string, level, n int, fn func(lo, hi int)) {
	if e.opt.LegacySpawn {
		sched.Spawn(e.opt.Workers, n, fn)
		return
	}
	e.pool.RunTagged(tag, level, n, fn)
}

// kernIndexed is kern with participant identity: fn receives the claiming
// participant's id (dense in [0, scratchWidth())) for indexing per-worker
// scratch. Both dispatch paths honor the same id contract.
func (e *Engine) kernIndexed(tag string, level, n int, fn func(id, lo, hi int)) {
	if e.opt.LegacySpawn {
		sched.SpawnIndexed(e.opt.Workers, n, fn)
		return
	}
	e.pool.RunIndexed(tag, level, n, fn)
}

// scratchWidth bounds the participant ids either dispatch path can hand out:
// the pool's worker count covers RunIndexed, and SpawnIndexed creates at most
// Options.Workers chunks, which New passed through to the pool when positive.
func (e *Engine) scratchWidth() int { return e.pool.Workers() }

// Pool returns the engine's persistent scheduler pool so applications
// (placement, sizing) can dispatch their own hot loops onto the same workers.
func (e *Engine) Pool() *sched.Pool { return e.pool }

// Close releases the engine's worker pool. Optional: dropping the last
// reference to the engine releases the workers automatically; Close is for
// deterministic shutdown and is idempotent. The engine must not be used
// after Close.
func (e *Engine) Close() { e.pool.Close() }

// EnableKernelStats attaches (and returns) a telemetry collector recording
// every subsequent kernel launch: per-kernel and per-level span counts, chunk
// imbalance and wall time. Idempotent — repeated calls return the same
// collector.
func (e *Engine) EnableKernelStats() *sched.Stats {
	if e.stats == nil {
		e.stats = sched.NewStats()
		e.pool.SetStats(e.stats)
	}
	return e.stats
}

// SetTracer attaches (or detaches, with nil) a span tracer recording the
// engine's phase and per-level timings. Safe to call between passes; not
// concurrently with one.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Tracer returns the attached span tracer (nil when none).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// KernelStats snapshots the collected kernel profiles (nil before
// EnableKernelStats).
func (e *Engine) KernelStats() []sched.KernelProfile {
	if e.stats == nil {
		return nil
	}
	return e.stats.Snapshot()
}

// base returns the flat offset of (rf, pin)'s Top-K block. The row stride is
// capPins, not numPins: an engine may carry tensor headroom beyond its live
// pins so structural reseeds grow in place.
func (e *Engine) base(rf int, pin int32) int {
	return ((rf * e.capPins) + int(pin)) * e.opt.TopK
}

// NumLevels returns the timing level count; INSTA's runtime scales with this
// rather than with pin count (paper §IV-A).
func (e *Engine) NumLevels() int { return e.lv.NumLevels }

// Level returns the timing level of pin p.
func (e *Engine) Level(p int32) int32 { return e.lv.Level[p] }

// MemoryBytes returns the engine's resident state footprint: the Top-K
// tensors, arc annotations, CSR topology and SP/EP tables — the analogue of
// Table I's GPU memory column. Gradient buffers are counted once allocated.
func (e *Engine) MemoryBytes() int64 {
	var b int64
	b += int64(len(e.topArr)+len(e.topMean)+len(e.topStd)) * 8
	b += int64(len(e.topSP)) * 4
	b += int64(len(e.arcFrom)) * (8*4 + 4*4 + 1) // mean/std both rf + ids + kind
	b += int64(len(e.faninArc)+len(e.faninFrom)) * 4
	b += int64(len(e.faninSense))
	b += int64(len(e.faninStart)+len(e.spOfPin)) * 4
	b += int64(len(e.lv.Order)+len(e.lv.Level)+len(e.lv.LevelStart)) * 4
	b += int64(len(e.spPin)) * (4 + 4 + 8 + 8)
	b += int64(len(e.epPin)) * (4 + 4 + 8 + 8 + 8 + 4 + 1)
	if e.gradArr[0] != nil {
		b += int64(len(e.gradArr[0])) * 2 * 4 * 8  // arr/arrStd/seed planes, both rf
		b += int64(len(e.gradMean[0])) * 2 * 4 * 8 // arc grad + flow planes, both rf
	}
	return b
}

// NumPins returns the pin count of the initialized graph.
func (e *Engine) NumPins() int { return e.numPins }

// NumArcs returns the arc count.
func (e *Engine) NumArcs() int { return len(e.arcFrom) }

// TopK returns the configured K.
func (e *Engine) TopK() int { return e.opt.TopK }

// SetArcDelay re-annotates one arc's delay distribution for output
// transition rf, the estimate_eco re-annotation entry point (Fig. 2's
// "update delays" path).
func (e *Engine) SetArcDelay(arc int32, rf int, d num.Dist) {
	e.arcMean[rf][arc] = d.Mean
	e.arcStd[rf][arc] = d.Std
}

// ArcDelay returns the current annotation of arc for transition rf.
func (e *Engine) ArcDelay(arc int32, rf int) num.Dist {
	return num.Dist{Mean: e.arcMean[rf][arc], Std: e.arcStd[rf][arc]}
}

// ArcEndpoints returns the (from, to) pins of arc.
func (e *Engine) ArcEndpoints(arc int32) (from, to int32) {
	return e.arcFrom[arc], e.arcTo[arc]
}

// ArcIsNet reports whether arc is an interconnect arc.
func (e *Engine) ArcIsNet(arc int32) bool { return e.arcKind[arc] == 1 }

// ArcCell returns the owning cell of a cell arc, or -1.
func (e *Engine) ArcCell(arc int32) int32 { return e.arcCell[arc] }

// ArcNet returns the net of a net arc, or -1.
func (e *Engine) ArcNet(arc int32) int32 { return e.arcNet[arc] }

// Endpoints returns the endpoint pin ids in extraction order.
func (e *Engine) Endpoints() []int32 { return e.epPin }

// Startpoints returns the startpoint pin ids in extraction order.
func (e *Engine) Startpoints() []int32 { return e.spPin }

// lca returns the lowest common ancestor of two clock nodes.
func (e *Engine) lca(a, b int32) int32 {
	for e.clkDepth[a] > e.clkDepth[b] {
		a = e.clkParent[a]
	}
	for e.clkDepth[b] > e.clkDepth[a] {
		b = e.clkParent[b]
	}
	for a != b {
		a = e.clkParent[a]
		b = e.clkParent[b]
	}
	return a
}

// credit returns the CPPR common-path credit for launch node l and capture
// node c: 2*nSigma*sqrt(shared variance), identical to the reference model.
func (e *Engine) credit(l, c int32) float64 {
	return 2 * e.nSigma * math.Sqrt(e.clkCumVar[e.lca(l, c)])
}

// excLookup adapts the pin-keyed sdc exception table.
func (e *Engine) excLookup(spPin, epPin int32) sdc.Adjust {
	return e.exc.Lookup(netlist.PinID(spPin), netlist.PinID(epPin))
}
