package core

// Regression guard for freelist recycling in the overlay (DESIGN.md §12):
// Reset returns pin-queue storage to a freelist and a reapply hands it back
// out in map-iteration (random) order, so a pin's "previously visible"
// queues must be reseeded from the base — stale recycled content that
// happens to equal the recomputed result would otherwise stop the wavefront
// early and strand downstream endpoints on base slacks. The bug is a
// storage-assignment lottery, so the test re-runs the cycle several times.

import "testing"

func TestOverlayResetReapplyMatches(t *testing.T) {
	h := buildHarness(t, testSpec(83))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()

	deltas := perturb(e, 2, 31, 1.3, 1.1)
	o := NewOverlay(e)
	applyToOverlay(o, deltas)
	want := make([]float64, len(e.Endpoints()))
	for i := range want {
		want[i] = o.Slack(int32(i))
	}
	changed := len(o.ChangedEndpoints())
	if changed == 0 {
		t.Fatal("perturbation changed no endpoints — test is vacuous")
	}

	for it := 0; it < 5; it++ {
		o.Reset()
		applyToOverlay(o, deltas)
		if got := len(o.ChangedEndpoints()); got != changed {
			t.Fatalf("iter %d: %d changed endpoints != first apply's %d", it, got, changed)
		}
		for i := range want {
			if got := o.Slack(int32(i)); got != want[i] {
				t.Fatalf("iter %d: ep %d slack %v != first apply %v", it, i, got, want[i])
			}
		}
	}
}
