package core

import (
	"runtime"
	"testing"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/refsta"
)

// The scheduler contract (ISSUE: "propagation results must remain
// bit-identical for any worker count") is proven here: every buffer the
// engine computes — Top-K queues, endpoint slacks, arrival and arc gradients,
// hold state — must come out bit-for-bit equal for Workers ∈ {1, 2, 7,
// NumCPU} on several bench presets. A tiny grain forces many chunks per
// launch so the claiming interleavings actually differ between runs.

// engineState is a bitwise snapshot of everything a full evaluation writes.
type engineState struct {
	topArr, topMean, topStd []float64
	topSP                   []int32
	epSlack                 []float64
	epSP                    []int32
	gradArr                 [2][]float64
	gradArrStd              [2][]float64
	gradMean                [2][]float64
	gradStd                 [2][]float64
	holdNegArr              []float64
	holdSlack               []float64
}

func captureState(e *Engine) engineState {
	cp := func(xs []float64) []float64 { return append([]float64(nil), xs...) }
	cpi := func(xs []int32) []int32 { return append([]int32(nil), xs...) }
	s := engineState{
		topArr:  cp(e.topArr),
		topMean: cp(e.topMean),
		topStd:  cp(e.topStd),
		topSP:   cpi(e.topSP),
		epSlack: cp(e.epSlack),
		epSP:    cpi(e.epSP),
	}
	for rf := 0; rf < 2; rf++ {
		s.gradArr[rf] = cp(e.gradArr[rf])
		s.gradArrStd[rf] = cp(e.gradArrStd[rf])
		s.gradMean[rf] = cp(e.gradMean[rf])
		s.gradStd[rf] = cp(e.gradStd[rf])
	}
	if e.hold != nil {
		s.holdNegArr = cp(e.hold.negArr)
		s.holdSlack = cp(e.hold.epSlack)
	}
	return s
}

// diffState returns the name of the first differing buffer, or "".
func diffState(a, b engineState) string {
	eq := func(x, y []float64) bool {
		for i := range x {
			// Bitwise comparison: NaN != NaN under ==, and we must also
			// distinguish -Inf slots, so compare with == after checking both
			// are identical floats (the buffers never hold NaN).
			if x[i] != y[i] {
				return false
			}
		}
		return len(x) == len(y)
	}
	eqi := func(x, y []int32) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return len(x) == len(y)
	}
	switch {
	case !eq(a.topArr, b.topArr):
		return "topArr"
	case !eq(a.topMean, b.topMean):
		return "topMean"
	case !eq(a.topStd, b.topStd):
		return "topStd"
	case !eqi(a.topSP, b.topSP):
		return "topSP"
	case !eq(a.epSlack, b.epSlack):
		return "epSlack"
	case !eqi(a.epSP, b.epSP):
		return "epSP"
	case !eq(a.holdNegArr, b.holdNegArr):
		return "hold.negArr"
	case !eq(a.holdSlack, b.holdSlack):
		return "hold.epSlack"
	}
	for rf := 0; rf < 2; rf++ {
		switch {
		case !eq(a.gradArr[rf], b.gradArr[rf]):
			return "gradArr"
		case !eq(a.gradArrStd[rf], b.gradArrStd[rf]):
			return "gradArrStd"
		case !eq(a.gradMean[rf], b.gradMean[rf]):
			return "gradMean"
		case !eq(a.gradStd[rf], b.gradStd[rf]):
			return "gradStd"
		}
	}
	return ""
}

// workerCounts is the ISSUE-mandated sweep, deduplicated (NumCPU may be 1).
func workerCounts() []int {
	want := []int{1, 2, 7, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, w := range want {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	presets := []struct {
		name string
		spec func() (bench.Spec, error)
		hold bool
	}{
		{"des", func() (bench.Spec, error) { return bench.IWLSSpec("des") }, false},
		{"superblue18", func() (bench.Spec, error) { return bench.SuperblueSpec("superblue18") }, true},
		{"superblue16", func() (bench.Spec, error) { return bench.SuperblueSpec("superblue16") }, false},
	}
	for _, pr := range presets {
		t.Run(pr.name, func(t *testing.T) {
			spec, err := pr.spec()
			if err != nil {
				t.Fatal(err)
			}
			b, err := bench.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			tab := circuitops.Extract(ref)

			run := func(workers int) engineState {
				// Grain 8 splits even narrow levels into several chunks, so
				// worker counts > 1 genuinely interleave.
				e, err := NewEngine(tab, Options{
					TopK: 6, Tau: 25, Hold: pr.hold, Workers: workers, Grain: 8,
				})
				if err != nil {
					t.Fatal(err)
				}
				e.Run()
				e.Backward()
				if pr.hold {
					e.EvalHoldSlacks()
				}
				return captureState(e)
			}

			want := run(1)
			for _, w := range workerCounts()[1:] {
				got := run(w)
				if d := diffState(want, got); d != "" {
					t.Fatalf("workers=%d: buffer %s differs from workers=1", w, d)
				}
			}
		})
	}
}

// TestIncrementalDeterministicAcrossWorkerCounts covers the fourth migrated
// pass: after a batch of re-annotations, PropagateIncremental must land on
// the same bits for any worker count (and agree with a full Propagate).
func TestIncrementalDeterministicAcrossWorkerCounts(t *testing.T) {
	spec, err := bench.IWLSSpec("des")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := circuitops.Extract(ref)

	run := func(workers int) engineState {
		e, err := NewEngine(tab, Options{TopK: 4, Workers: workers, Grain: 8})
		if err != nil {
			t.Fatal(err)
		}
		e.Run()
		// Perturb a scattered set of arcs so the wavefront covers many levels.
		var touched []int32
		for arc := int32(3); arc < int32(e.NumArcs()); arc += 61 {
			for rf := 0; rf < 2; rf++ {
				d := e.ArcDelay(arc, rf)
				d.Mean *= 1.15
				d.Std *= 1.05
				e.SetArcDelay(arc, rf, d)
			}
			touched = append(touched, arc)
		}
		e.PropagateIncremental(touched)
		e.EvalSlacks()
		return captureState(e)
	}

	want := run(1)
	for _, w := range workerCounts()[1:] {
		got := run(w)
		if d := diffState(want, got); d != "" {
			t.Fatalf("workers=%d: buffer %s differs from workers=1", w, d)
		}
	}
}
