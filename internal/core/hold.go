package core

// Hold (early/min-delay) analysis in INSTA, mirroring the late Top-K kernel:
// per pin and transition a fixed-size queue of the K *smallest* early-corner
// arrival distributions with unique startpoints. Enabled with Options.Hold;
// the default setup-only configuration pays nothing for it.
//
// The queues reuse Algorithm 2's linear insert by negating the ordering key
// (early corner), so all of its invariants — packed slots, unique
// startpoints, strict ordering — carry over, as do the unit properties
// tested on InsertTopK.

import (
	"math"

	"insta/internal/liberty"
)

// holdState holds the early-arrival buffers (allocated when Options.Hold).
type holdState struct {
	// Flattened like the late queues: index ((rf*numPins)+pin)*K + k.
	// negArr stores the negated early corner so larger = earlier.
	negArr []float64
	mean   []float64
	std    []float64
	sp     []int32

	epHold  [2][]float64 // hold requirement (+Inf = unchecked)
	epSlack []float64
}

// initHold allocates the hold buffers from the extraction tables.
func (e *Engine) initHold(holdRise, holdFall []float64) {
	k := e.opt.TopK
	sz := 2 * e.capPins * k
	e.hold = &holdState{
		negArr:  make([]float64, sz),
		mean:    make([]float64, sz),
		std:     make([]float64, sz),
		sp:      make([]int32, sz),
		epSlack: make([]float64, len(e.epPin)),
	}
	e.hold.epHold[0] = holdRise
	e.hold.epHold[1] = holdFall
}

// HoldEnabled reports whether the engine propagates early arrivals.
func (e *Engine) HoldEnabled() bool { return e.hold != nil }

// propagateHold runs the early-arrival forward pass. Propagate calls it
// automatically when hold is enabled.
func (e *Engine) propagateHold() {
	sp := e.tracer.StartArg(kHold, "levels", int64(e.lv.NumLevels))
	for _, g := range e.levelPlan() {
		lsp := sp.ChildArg("level", "level", int64(g.lo))
		if g.hi == g.lo+1 {
			pins := e.lv.Nodes(g.lo)
			e.kern(kHold, g.lo, len(pins), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					e.propagatePinMin(pins[i])
				}
			})
		} else {
			// Fused narrow levels run as one guaranteed-inline chunk; see
			// Propagate.
			e.kern(kHold, g.lo, g.spans, func(lo, hi int) {
				for l := g.lo; l < g.hi; l++ {
					for _, p := range e.lv.Nodes(l) {
						e.propagatePinMin(p)
					}
				}
			})
		}
		lsp.End()
	}
	sp.End()
}

func (e *Engine) propagatePinMin(p int32) {
	h := e.hold
	k := e.opt.TopK
	if sp := e.spOfPin[p]; sp >= 0 {
		for rf := 0; rf < 2; rf++ {
			b := e.base(rf, p)
			clearQueue(h.negArr[b:b+k], h.sp[b:b+k])
			h.mean[b] = e.spMean[sp]
			h.std[b] = e.spStd[sp]
			h.negArr[b] = -(e.spMean[sp] - e.nSigma*e.spStd[sp])
			h.sp[b] = sp
		}
		return
	}
	lo, hi := e.faninStart[p], e.faninStart[p+1]
	for rf := 0; rf < 2; rf++ {
		b := e.base(rf, p)
		negArr := h.negArr[b : b+k]
		mean := h.mean[b : b+k]
		std := h.std[b : b+k]
		sps := h.sp[b : b+k]
		clearQueue(negArr, sps)
		for pos := lo; pos < hi; pos++ {
			arc := e.faninArc[pos]
			parent := e.faninFrom[pos]
			am := e.arcMean[rf][arc]
			as := e.arcStd[rf][arc]
			inRFs, n := liberty.Unate(e.faninSense[pos]).InRFs(rf)
			for ri := 0; ri < n; ri++ {
				pb := e.base(inRFs[ri], parent)
				for kk := 0; kk < k; kk++ {
					psp := h.sp[pb+kk]
					if psp == noSP {
						break
					}
					m := h.mean[pb+kk] + am
					pstd := h.std[pb+kk]
					s := math.Sqrt(pstd*pstd + as*as)
					// Negated early corner: -(m - nSigma*s).
					InsertTopK(negArr, mean, std, sps, -(m - e.nSigma*s), m, s, psp)
				}
			}
		}
	}
}

// EvalHoldSlacks evaluates hold slacks from the propagated early arrivals:
//
//	slack = earlyArrival - holdReq + credit(sp, ep)
//
// minimized over startpoints and transitions. Unchecked endpoints (primary
// outputs) carry +Inf. Requires Options.Hold and a prior Propagate.
func (e *Engine) EvalHoldSlacks() []float64 {
	e.evalHoldSlacks()
	out := make([]float64, len(e.hold.epSlack))
	copy(out, e.hold.epSlack)
	return out
}

// evalHoldSlacks is EvalHoldSlacks without the defensive copy.
func (e *Engine) evalHoldSlacks() {
	sp := e.tracer.StartArg(kHoldSlack, "endpoints", int64(len(e.epPin)))
	defer sp.End()
	h := e.hold
	k := e.opt.TopK
	e.kern(kHoldSlack, -1, len(e.epPin), func(lo, hiI int) {
		for i := lo; i < hiI; i++ {
			p := e.epPin[i]
			best := math.Inf(1)
			for rf := 0; rf < 2; rf++ {
				req := h.epHold[rf][i]
				if math.IsInf(req, 1) {
					continue
				}
				b := e.base(rf, p)
				for kk := 0; kk < k; kk++ {
					sp := h.sp[b+kk]
					if sp == noSP {
						break
					}
					adj := e.excLookup(e.spPin[sp], p)
					if adj.False {
						continue
					}
					early := -h.negArr[b+kk]
					if s := early - req + e.credit(e.spNode[sp], e.epNode[i]); s < best {
						best = s
					}
				}
			}
			h.epSlack[i] = best
		}
	})
}

// HoldWNS returns the worst negative hold slack of the last evaluation.
func (e *Engine) HoldWNS() float64 {
	w := 0.0
	for _, s := range e.hold.epSlack {
		if s < w {
			w = s
		}
	}
	return w
}

// HoldTNS returns the total negative hold slack of the last evaluation.
func (e *Engine) HoldTNS() float64 {
	t := 0.0
	for _, s := range e.hold.epSlack {
		if s < 0 {
			t += s
		}
	}
	return t
}
