package core

import (
	"math"

	"insta/internal/liberty"
)

// Backward runs the gradient backpropagation kernel (paper §III-F/G). It
// computes the "timing gradient" of every arc — ∂TNS/∂(arc delay mean) and
// ∂TNS/∂(arc delay sigma) — by walking the level schedule in reverse from
// the endpoints.
//
// The forward max-merge is non-differentiable, so merge points distribute
// gradient over their fan-in contributions with the Log-Sum-Exp softmax
// weights of Eq. 6 at temperature tau (the engine option). The contribution
// corners are recomputed from the most-critical (k=0) statistical state of
// the last Propagate, so Backward must follow a forward evaluation.
//
// Because arrivals are distributions, two gradient planes propagate in
// lockstep: ∂Loss/∂(pin arrival mean) and ∂Loss/∂(pin arrival sigma). Means
// compose additively (chain factor 1) while sigmas compose by RSS (chain
// factor s_parent/s_child < 1), which is why a single-plane corner gradient
// would overestimate sigma sensitivities downstream.
//
// Parallel determinism: where a GPU backward kernel would atomicAdd into
// shared parent-pin slots (making the float accumulation order depend on the
// scheduler), this pass is two-phase per level. Each pin first *gathers* its
// own gradient — its endpoint seed plus the flow slots of its fan-out arcs,
// summed in fan-out CSR order — then *scatters* softmax-weighted shares into
// the flow slots of its fan-in arcs, which it exclusively owns (each arc has
// exactly one `to` pin). The reverse level sweep guarantees every child has
// scattered before any parent gathers, so both phases fuse into one kernel
// per level with no atomics and a bit-identical result for any worker count.
//
// TNS here is Σ_ep min(0, slack_ep) with slack taken from the k=0 entry per
// transition; each violating endpoint seeds ∂/∂mean = -1 and ∂/∂sigma =
// -nSigma into its critical transition. Mean gradients are therefore ≤ 0:
// making an arc faster raises TNS toward 0 in proportion to |gradient|.
func (e *Engine) Backward() { e.BackwardWeighted(nil) }

// BackwardWeighted runs the backward kernel with explicit per-endpoint loss
// gradients: endpoint i's critical transition is seeded with -w[i] on the
// mean plane (and -nSigma*w[i] on the sigma plane). A nil w reproduces the
// TNS subgradient (weight 1 on violating endpoints). Combined with
// WNSWeights this yields ∂(soft-WNS)/∂(arc delay) — the paper's "gradients
// of WNS and TNS with respect to leaf variables".
func (e *Engine) BackwardWeighted(w []float64) {
	sp := e.tracer.StartArg(kBackward, "levels", int64(e.lv.NumLevels))
	defer sp.End()
	n := e.numPins
	nArcs := len(e.arcFrom)
	if e.gradArr[0] == nil {
		for rf := 0; rf < 2; rf++ {
			e.gradArr[rf] = make([]float64, n)
			e.gradArrStd[rf] = make([]float64, n)
			e.seedMean[rf] = make([]float64, n)
			e.seedStd[rf] = make([]float64, n)
			e.flowMean[rf] = make([]float64, nArcs)
			e.flowStd[rf] = make([]float64, nArcs)
			e.gradMean[rf] = make([]float64, nArcs)
			e.gradStd[rf] = make([]float64, nArcs)
		}
	}
	e.fanoutCSR() // gather phase walks fan-out arcs
	for rf := 0; rf < 2; rf++ {
		clearFloats(e.seedMean[rf])
		clearFloats(e.seedStd[rf])
		clearFloats(e.flowMean[rf])
		clearFloats(e.flowStd[rf])
		clearFloats(e.gradMean[rf])
		clearFloats(e.gradStd[rf])
	}

	e.seedEndpointGradients(w)

	// Reverse level sweep: each pin gathers its gradient from its fan-out
	// arcs' flow slots, then distributes it to its fan-in arcs and parents.
	for l := e.lv.NumLevels - 1; l >= 0; l-- {
		pins := e.lv.Nodes(l)
		lsp := sp.ChildArg("level", "level", int64(l))
		e.kern(kBackward, l, len(pins), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e.backpropPin(pins[i])
			}
		})
		lsp.End()
	}
}

// seedEndpointGradients injects the TNS subgradient at each violating
// endpoint's critical transition, evaluated on the k=0 (most critical)
// entries — the K=1 view the differentiable mode operates on. The endpoint
// corner is mean + nSigma*sigma, so the sigma plane is seeded with
// -nSigma per unit of slack.
func (e *Engine) seedEndpointGradients(w []float64) {
	for i, p := range e.epPin {
		best, bestRF := e.k0Slack(i)
		if bestRF < 0 {
			continue
		}
		weight := 0.0
		switch {
		case w != nil:
			weight = w[i]
		case best < 0:
			weight = 1
		}
		if weight != 0 {
			e.seedMean[bestRF][p] += -weight
			e.seedStd[bestRF][p] += -e.nSigma * weight
		}
	}
}

// k0Slack evaluates endpoint i's slack on the most-critical (k=0) entries —
// the K=1 view the differentiable mode operates on — returning the slack and
// its transition, or rf -1 when the endpoint is untimed.
func (e *Engine) k0Slack(i int) (slack float64, rfOut int) {
	p := e.epPin[i]
	best := math.Inf(1)
	bestRF := -1
	for rf := 0; rf < 2; rf++ {
		b := e.base(rf, p)
		sp := e.topSP[b]
		if sp == noSP {
			continue
		}
		adj := e.excLookup(e.spPin[sp], p)
		if adj.False {
			continue
		}
		req := e.epBase[rf][i] +
			float64(adj.CycleCount()-1)*e.period +
			e.credit(e.spNode[sp], e.epNode[i])
		if s := req - e.topArr[b]; s < best {
			best, bestRF = s, rf
		}
	}
	return best, bestRF
}

// WNSWeights returns soft-min weights over the current endpoint slacks at
// temperature tau: passing them to BackwardWeighted backpropagates the
// smooth worst-negative-slack objective
// WNS_soft = -tau*log Σ exp(-slack_i/tau), whose gradient concentrates on
// the worst endpoints as tau → 0. Requires a prior Propagate.
func (e *Engine) WNSWeights(tau float64) []float64 {
	if tau <= 0 {
		tau = 1
	}
	n := len(e.epPin)
	slacks := make([]float64, n)
	minSlack := math.Inf(1)
	for i := range e.epPin {
		s, rf := e.k0Slack(i)
		if rf < 0 {
			slacks[i] = math.Inf(1)
			continue
		}
		slacks[i] = s
		if s < minSlack {
			minSlack = s
		}
	}
	w := make([]float64, n)
	if math.IsInf(minSlack, 1) || minSlack >= 0 {
		return w // nothing violating: zero gradient
	}
	var sum float64
	for i, s := range slacks {
		if math.IsInf(s, 1) {
			continue
		}
		v := math.Exp((minSlack - s) / tau)
		w[i] = v
		sum += v
	}
	inv := 1 / sum
	for i := range w {
		w[i] *= inv
	}
	return w
}

// backpropPin gathers pin p's gradient from its fan-out flow slots (plus its
// endpoint seed) in fan-out CSR order, then distributes it across its fan-in
// contributions using the Eq. 6 softmax over contribution corner values. The
// distribution writes only flow slots of arcs ending at p, so pins within a
// level never touch shared state.
func (e *Engine) backpropPin(p int32) {
	folo, fohi := e.foStart[p], e.foStart[p+1]
	lo, hi := e.faninStart[p], e.faninStart[p+1]
	tau := e.opt.Tau
	var contribs [16]contrib
	for rf := 0; rf < 2; rf++ {
		// Gather: fixed CSR order makes the float sum order deterministic.
		gm := e.seedMean[rf][p]
		gs := e.seedStd[rf][p]
		for pos := folo; pos < fohi; pos++ {
			a := e.foArc[pos]
			gm += e.flowMean[rf][a]
			gs += e.flowStd[rf][a]
		}
		e.gradArr[rf][p] = gm
		e.gradArrStd[rf][p] = gs
		if (gm == 0 && gs == 0) || lo == hi {
			continue
		}
		cs := contribs[:0]
		maxCorner := math.Inf(-1)
		for pos := lo; pos < hi; pos++ {
			arc := e.faninArc[pos]
			parent := e.faninFrom[pos]
			am := e.arcMean[rf][arc]
			as := e.arcStd[rf][arc]
			inRFs, nrf := liberty.Unate(e.faninSense[pos]).InRFs(rf)
			for ri := 0; ri < nrf; ri++ {
				prf := inRFs[ri]
				pb := e.base(prf, parent)
				if e.topSP[pb] == noSP {
					continue
				}
				pstd := e.topStd[pb]
				rss := math.Sqrt(pstd*pstd + as*as)
				corner := e.topMean[pb] + am + e.nSigma*rss
				// Chain factors through s_child = RSS(s_parent, arc sigma).
				dsParent, dsArc := 1.0, 0.0
				if rss > 0 {
					dsParent = pstd / rss
					dsArc = as / rss
				}
				cs = append(cs, contrib{
					arc: arc, prf: int8(prf),
					corner: corner, dsParent: dsParent, dsArc: dsArc,
				})
				if corner > maxCorner {
					maxCorner = corner
				}
			}
		}
		if len(cs) == 0 {
			continue
		}
		// Softmax weights, Eq. 6.
		var sum float64
		for i := range cs {
			w := math.Exp((cs[i].corner - maxCorner) / tau)
			cs[i].w = w
			sum += w
		}
		inv := 1 / sum
		for i := range cs {
			c := &cs[i]
			w := c.w * inv
			e.gradMean[rf][c.arc] += w * gm
			e.gradStd[rf][c.arc] += w * gs * c.dsArc
			// Scatter: flow slots of fan-in arcs are owned by p. A non-unate
			// arc can route both of p's transitions onto the same (prf, arc)
			// slot, hence += rather than assignment.
			e.flowMean[int(c.prf)][c.arc] += w * gm
			e.flowStd[int(c.prf)][c.arc] += w * gs * c.dsParent
		}
	}
}

type contrib struct {
	arc      int32
	prf      int8
	corner   float64
	dsParent float64
	dsArc    float64
	w        float64
}

func clearFloats(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// ArcGradMean returns ∂TNS/∂(mean delay of arc) for output transition rf
// from the last Backward call.
func (e *Engine) ArcGradMean(arc int32, rf int) float64 { return e.gradMean[rf][arc] }

// ArcGradStd returns ∂TNS/∂(sigma of arc) for output transition rf.
func (e *Engine) ArcGradStd(arc int32, rf int) float64 { return e.gradStd[rf][arc] }

// TimingGradient returns the arc's combined timing gradient
// ∂TNS/∂(mean delay), summed over both output transitions. It is ≤ 0; its
// magnitude ranks the arc's leverage on TNS (paper §III-G).
func (e *Engine) TimingGradient(arc int32) float64 {
	return e.gradMean[0][arc] + e.gradMean[1][arc]
}

// ArrivalGradient returns ∂TNS/∂(arrival mean at pin) for transition rf.
func (e *Engine) ArrivalGradient(rf int, pin int32) float64 { return e.gradArr[rf][pin] }
