package core

import (
	"testing"

	"insta/internal/bench"
	"insta/internal/num"
)

// perturb returns a deterministic scattered arc-delay changelist: every
// stride-th arc gets its mean and sigma scaled.
func perturb(e *Engine, start, stride int32, meanScale, stdScale float64) map[int32][2]num.Dist {
	out := make(map[int32][2]num.Dist)
	for arc := start; arc < int32(e.NumArcs()); arc += stride {
		var d [2]num.Dist
		for rf := 0; rf < 2; rf++ {
			d[rf] = e.ArcDelay(arc, rf)
			d[rf].Mean *= meanScale
			d[rf].Std *= stdScale
		}
		out[arc] = d
	}
	return out
}

func applyToOverlay(o *Overlay, deltas map[int32][2]num.Dist) {
	for arc, d := range deltas {
		for rf := 0; rf < 2; rf++ {
			o.SetArcDelay(arc, rf, d[rf])
		}
	}
	o.Propagate()
}

func applyToEngine(e *Engine, deltas map[int32][2]num.Dist) {
	for arc, d := range deltas {
		for rf := 0; rf < 2; rf++ {
			e.SetArcDelay(arc, rf, d[rf])
		}
	}
}

// TestOverlayMatchesFreshFull: an overlay evaluation over a frozen base must
// be bit-identical, at every endpoint, to a from-scratch full propagation of
// a twin engine carrying the same annotations.
func TestOverlayMatchesFreshFull(t *testing.T) {
	h := buildHarness(t, testSpec(71))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 2, Grain: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	baseTNS := e.TNS()

	twin, err := NewEngine(h.tab, Options{TopK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()

	deltas := perturb(e, 3, 41, 1.25, 1.1)
	orig := make(map[int32]num.Dist, len(deltas))
	for arc := range deltas {
		orig[arc] = e.ArcDelay(arc, 0)
	}
	o := NewOverlay(e)
	applyToOverlay(o, deltas)
	applyToEngine(twin, deltas)
	want := twin.Run()

	for i := range want {
		if got := o.Slack(int32(i)); got != want[i] {
			t.Fatalf("ep %d: overlay slack %v != fresh full %v", i, got, want[i])
		}
	}
	if o.WNS() != twin.WNS() || o.TNS() != twin.TNS() {
		t.Fatalf("overlay WNS/TNS %v/%v != fresh %v/%v", o.WNS(), o.TNS(), twin.WNS(), twin.TNS())
	}
	if len(o.ChangedEndpoints()) == 0 {
		t.Fatal("perturbation changed no endpoints — test is vacuous")
	}
	// The base engine must be untouched by the overlay evaluation.
	if e.TNS() != baseTNS {
		t.Fatalf("overlay evaluation mutated base TNS: %v != %v", e.TNS(), baseTNS)
	}
	for arc, d := range orig {
		if e.ArcDelay(arc, 0) != d {
			t.Fatalf("arc %d: base annotation mutated", arc)
		}
	}
}

// TestOverlayCommitMatchesPreview: committing folds the deltas into the base
// with exactly the previewed result.
func TestOverlayCommitMatchesPreview(t *testing.T) {
	h := buildHarness(t, testSpec(72))
	e, err := NewEngine(h.tab, Options{TopK: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	e.EvalSlacks()

	o := NewOverlay(e)
	applyToOverlay(o, perturb(e, 1, 53, 0.8, 1.0))

	preview := make([]float64, len(e.Slacks()))
	for i := range preview {
		preview[i] = o.Slack(int32(i))
	}
	pWNS, pTNS := o.WNS(), o.TNS()

	o.Commit()
	got := e.Slacks()
	for i := range got {
		if got[i] != preview[i] {
			t.Fatalf("ep %d: committed slack %v != previewed %v", i, got[i], preview[i])
		}
	}
	if e.WNS() != pWNS || e.TNS() != pTNS {
		t.Fatalf("committed WNS/TNS %v/%v != previewed %v/%v", e.WNS(), e.TNS(), pWNS, pTNS)
	}
	if st := o.Stats(); st.TouchedArcs != 0 || st.OverlayPins != 0 || st.ChangedEPs != 0 {
		t.Fatalf("overlay not reset after commit: %+v", st)
	}
}

// TestOverlayNeverFullPropagates: session evaluations must run only the
// cone-limited overlay kernels — the full forward kernel's span count stays
// frozen after initialization (the ISSUE acceptance criterion, checked here
// on the same design family and in the server tests on a block preset).
func TestOverlayNeverFullPropagates(t *testing.T) {
	h := buildHarness(t, testSpec(73))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stats := e.EnableKernelStats()
	e.Run()
	fwdAfterInit := stats.KernelSpans(KernelForward)

	o := NewOverlay(e)
	applyToOverlay(o, perturb(e, 2, 67, 1.3, 1.2))
	o.Reset()
	applyToOverlay(o, perturb(e, 5, 71, 1.1, 1.0))
	o.Commit()

	if got := stats.KernelSpans(KernelForward); got != fwdAfterInit {
		t.Fatalf("overlay/commit triggered full forward propagate: spans %d -> %d", fwdAfterInit, got)
	}
	if stats.KernelSpans(KernelOverlay) == 0 {
		t.Fatal("no overlay kernel spans recorded")
	}
	// Cone-limited: both overlay evaluations together must touch fewer spans
	// than a single full propagate would.
	if ov := stats.KernelSpans(KernelOverlay); ov >= fwdAfterInit {
		t.Fatalf("overlay spans %d not cone-limited vs one full propagate %d", ov, fwdAfterInit)
	}
}

// TestOverlayRebase: after another writer commits under a session, Rebase +
// Propagate must re-derive the session's view against the new base, matching
// sequential application of both changelists.
func TestOverlayRebase(t *testing.T) {
	h := buildHarness(t, testSpec(74))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()

	dA := perturb(e, 1, 37, 1.2, 1.1) // session A: commits first
	dB := perturb(e, 4, 43, 0.9, 1.0) // session B: rebases over A

	oA, oB := NewOverlay(e), NewOverlay(e)
	applyToOverlay(oB, dB) // B evaluates against the pre-commit base
	applyToOverlay(oA, dA)
	oA.Commit()

	oB.Rebase()
	oB.Propagate()

	twin, err := NewEngine(h.tab, Options{TopK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	applyToEngine(twin, dA)
	applyToEngine(twin, dB)
	want := twin.Run()
	for i := range want {
		if got := oB.Slack(int32(i)); got != want[i] {
			t.Fatalf("ep %d after rebase: %v != sequential %v", i, got, want[i])
		}
	}

	// And B's commit lands the sequential state in the base.
	oB.Commit()
	got := e.Slacks()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ep %d after rebase+commit: %v != sequential %v", i, got[i], want[i])
		}
	}
}

// TestOverlayReset: rollback restores the base view bit-exactly.
func TestOverlayReset(t *testing.T) {
	h := buildHarness(t, testSpec(75))
	e, err := NewEngine(h.tab, Options{TopK: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	base := e.Run()

	o := NewOverlay(e)
	applyToOverlay(o, perturb(e, 0, 29, 1.5, 1.3))
	o.Reset()
	for i := range base {
		if got := o.Slack(int32(i)); got != base[i] {
			t.Fatalf("ep %d after reset: %v != base %v", i, got, base[i])
		}
	}
	if st := o.Stats(); st.TouchedArcs != 0 || st.OverlayPins != 0 {
		t.Fatalf("reset left overlay state: %+v", st)
	}
}

// TestOverlayEstimateECOPath drives the overlay through the reference
// engine's estimate_eco deltas — the serving layer's actual input — and
// cross-checks against a fresh full propagation.
func TestOverlayEstimateECOPath(t *testing.T) {
	h := buildHarness(t, testSpec(76))
	e, err := NewEngine(h.tab, Options{TopK: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	twin, err := NewEngine(h.tab, Options{TopK: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()

	o := NewOverlay(e)
	cl := bench.Changelist(h.b, 9, 8)
	for _, r := range cl {
		deltas, err := h.ref.EstimateECO(r.Cell, r.NewLib)
		if err != nil {
			continue
		}
		for _, dl := range deltas {
			for rf := 0; rf < 2; rf++ {
				o.SetArcDelay(dl.ArcID, rf, dl.Delay[rf])
				twin.SetArcDelay(dl.ArcID, rf, dl.Delay[rf])
			}
		}
	}
	o.Propagate()
	want := twin.Run()
	for i := range want {
		if got := o.Slack(int32(i)); got != want[i] {
			t.Fatalf("ep %d: estimate_eco overlay %v != fresh %v", i, got, want[i])
		}
	}
}
