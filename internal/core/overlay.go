package core

// Copy-on-write what-if evaluation. The serving layer (internal/server) runs
// many concurrent "ECO sessions" against one signoff-propagated engine: each
// session re-annotates a handful of arcs (an estimate_eco batch) and wants
// the resulting endpoint slacks without paying a full propagation and without
// cloning the engine's Top-K tensors.
//
// An Overlay freezes the base engine's propagated state as the immutable
// snapshot and holds only sparse deltas on top of it:
//
//   - an arc-delay overlay (the re-annotated arcs),
//   - a pin-queue overlay covering exactly the fan-out cone the deltas
//     reached before the wavefront converged (the same equality-stop as
//     PropagateIncremental), and
//   - the slacks of endpoints inside that cone.
//
// Reads fall through to the base engine wherever the overlay has no entry,
// so N concurrent sessions cost O(Σ cone sizes), not N engine clones. The
// overlay never writes base state; Commit folds the arc deltas back into the
// base with a regular incremental propagation, which makes the committed
// state bit-identical to the overlay's preview (both recompute the same cone
// with the same merge arithmetic in the same order).
//
// Concurrency contract: an Overlay itself is single-threaded (the serving
// layer serializes per-session), but any number of overlays may evaluate in
// parallel over one frozen base as long as nothing mutates that base — the
// serving layer enforces this with a reader/writer lock around commits.

import (
	"math"
	"slices"

	"insta/internal/liberty"
	"insta/internal/num"
)

// Overlay is a copy-on-write what-if view over a propagated base engine.
//
// Allocation discipline (DESIGN.md §12): the overlay is built to re-evaluate
// the *same* cone repeatedly without allocating — Reset and Rebase clear the
// sparse maps in place and return pin-queue storage to a freelist instead of
// reallocating, the wavefront state lives in a per-overlay propScratch, and
// endpoint bookkeeping uses reusable slices. A session's steady-state
// apply→propagate→read loop therefore settles at zero allocations per
// operation once its maps have grown to the cone's footprint.
type Overlay struct {
	e *Engine

	// Sparse arc-delay overlay: arc id -> per-rf delay distributions.
	arcDelta map[int32]*[2]num.Dist
	touched  []int32 // overlaid arc ids in first-annotation order
	pending  []int32 // arcs annotated since the last propagate
	distFree []*[2]num.Dist

	// Sparse pin-queue overlay: pins whose Top-K queues were recomputed
	// under the overlay. Entries may be bit-equal to the base (a wavefront
	// that converged); reads through them are still correct.
	pinQ map[int32]*pinOverlay
	free []*pinOverlay // released queue storage, reused before allocating

	// Endpoint state: slacks re-evaluated under the overlay, the endpoints
	// whose pins changed but are not yet re-evaluated, and the sorted set of
	// all endpoints ever re-evaluated (ChangedEndpointsView).
	epSlack    map[int32]float64
	dirty      []int32
	changedEPs []int32
	epOut      []float64 // slack kernel output scratch

	scratch *propScratch // wavefront state, reused across Propagate calls

	// Persistent kernel closures: a closure literal passed to the pool
	// escapes (the job slot retains it), so building one per level would
	// cost an allocation per launch. These are bound once and read their
	// per-launch state (kernBucket, scratch, dirty, epOut) through o.
	kernBucket []int32
	kernFn     func(id, lo, hi int)
	slackFn    func(id, lo, hi int)
}

// pinOverlay holds one pin's recomputed Top-K queues, flattened rf*K+k like
// the engine's own tensors.
type pinOverlay struct {
	arr, mean, std []float64
	sp             []int32
}

// NewOverlay creates an empty overlay over e. The base engine must be fully
// propagated and slack-evaluated (Run) before the first ApplyArcDelay, and
// must stay frozen while the overlay evaluates.
func NewOverlay(e *Engine) *Overlay {
	return &Overlay{
		e:        e,
		arcDelta: make(map[int32]*[2]num.Dist),
		pinQ:     make(map[int32]*pinOverlay),
		epSlack:  make(map[int32]float64),
	}
}

// getPinOverlay returns queue storage for one pin, from the freelist when
// possible. The three float planes share one backing slab.
func (o *Overlay) getPinOverlay() *pinOverlay {
	if n := len(o.free); n > 0 {
		q := o.free[n-1]
		o.free = o.free[:n-1]
		return q
	}
	k := o.e.opt.TopK
	buf := make([]float64, 6*k)
	return &pinOverlay{
		arr:  buf[0 : 2*k : 2*k],
		mean: buf[2*k : 4*k : 4*k],
		std:  buf[4*k : 6*k : 6*k],
		sp:   make([]int32, 2*k),
	}
}

// seededPinOverlay returns queue storage for pin p preloaded with the base's
// queues. recomputePin's change detection compares against the previously
// *visible* queues, and a pin touched for the first time this Propagate was
// showing the base's — recycled freelist storage (or fresh zeroed storage)
// must not stand in for them, or a wavefront could stop early when stale
// content happens to match the recomputed result (a Reset followed by
// reapplying identical deltas often hands pins back their own old storage).
func (o *Overlay) seededPinOverlay(p int32) *pinOverlay {
	q := o.getPinOverlay()
	e := o.e
	k := e.opt.TopK
	for rf := 0; rf < 2; rf++ {
		b := e.base(rf, p)
		d := rf * k
		copy(q.arr[d:d+k], e.topArr[b:b+k])
		copy(q.mean[d:d+k], e.topMean[b:b+k])
		copy(q.std[d:d+k], e.topStd[b:b+k])
		copy(q.sp[d:d+k], e.topSP[b:b+k])
	}
	return q
}

// releasePins returns every overlaid pin queue to the freelist and empties
// the pin map in place.
func (o *Overlay) releasePins() {
	for _, q := range o.pinQ {
		o.free = append(o.free, q)
	}
	clear(o.pinQ)
}

// Base returns the engine this overlay shadows.
func (o *Overlay) Base() *Engine { return o.e }

// SetArcDelay annotates one arc's delay for output transition rf in the
// overlay only. The base engine is untouched. Call Propagate after a batch.
func (o *Overlay) SetArcDelay(arc int32, rf int, d num.Dist) {
	od := o.arcDelta[arc]
	if od == nil {
		if n := len(o.distFree); n > 0 {
			od = o.distFree[n-1]
			o.distFree = o.distFree[:n-1]
		} else {
			od = new([2]num.Dist)
		}
		od[0] = num.Dist{Mean: o.e.arcMean[0][arc], Std: o.e.arcStd[0][arc]}
		od[1] = num.Dist{Mean: o.e.arcMean[1][arc], Std: o.e.arcStd[1][arc]}
		o.arcDelta[arc] = od
		o.touched = append(o.touched, arc)
	}
	od[rf] = d
	// Dedupe pending against re-annotation of an already-pending arc.
	for _, a := range o.pending {
		if a == arc {
			return
		}
	}
	o.pending = append(o.pending, arc)
}

// ArcDelay returns the arc's delay as seen through the overlay.
func (o *Overlay) ArcDelay(arc int32, rf int) num.Dist {
	if od := o.arcDelta[arc]; od != nil {
		return od[rf]
	}
	return o.e.ArcDelay(arc, rf)
}

// arcDelay is the hot-path variant of ArcDelay.
func (o *Overlay) arcDelay(rf int, arc int32) (mean, std float64) {
	if od := o.arcDelta[arc]; od != nil {
		return od[rf].Mean, od[rf].Std
	}
	return o.e.arcMean[rf][arc], o.e.arcStd[rf][arc]
}

// queues returns pin p's Top-K queue slices for transition rf as seen
// through the overlay: the overlay's recomputed copy if present, else the
// base engine's frozen tensors.
func (o *Overlay) queues(rf int, p int32) (arr, mean, std []float64, sps []int32) {
	k := o.e.opt.TopK
	if q := o.pinQ[p]; q != nil {
		b := rf * k
		return q.arr[b : b+k], q.mean[b : b+k], q.std[b : b+k], q.sp[b : b+k]
	}
	b := o.e.base(rf, p)
	return o.e.topArr[b : b+k], o.e.topMean[b : b+k], o.e.topStd[b : b+k], o.e.topSP[b : b+k]
}

// Propagate re-propagates the fan-out cone of every arc annotated since the
// last call, writing recomputed queues into the overlay only. The wavefront
// walks the level schedule exactly like PropagateIncremental — each level's
// bucket is recomputed through the base engine's scheduler pool, and pins
// whose queues come out identical to their previously visible state stop the
// expansion — so the overlay state is bit-identical to what committing the
// same deltas would produce on the base.
func (o *Overlay) Propagate() {
	arcs := o.pending
	o.pending = o.pending[:0]
	if len(arcs) == 0 {
		return
	}
	e := o.e
	sp := e.tracer.StartArg(KernelOverlay, "arcs", int64(len(arcs)))
	defer sp.End()
	foStart, foAdj := e.foStart, e.foAdj

	// Wavefront state is per-overlay (concurrent overlays share one frozen
	// base but never scratch), reused allocation-free across Propagate calls.
	if o.scratch == nil {
		o.scratch = newPropScratch(e.lv.NumLevels, e.numPins, e.scratchWidth(), e.opt.TopK)
	}
	sc := o.scratch
	sc.reset()
	buckets := sc.buckets
	push := func(p int32) {
		if !sc.markQueued(p) {
			buckets[e.lv.Level[p]] = append(buckets[e.lv.Level[p]], p)
		}
	}
	for _, a := range arcs {
		push(e.arcTo[a])
	}

	for l := 0; l < len(buckets); l++ {
		bucket := buckets[l]
		if len(bucket) == 0 {
			continue
		}
		// Startpoint pins reseed constants and never change; drop them
		// before the kernel so the wavefront stops there, as the base
		// incremental path does implicitly.
		live := bucket[:0]
		for _, p := range bucket {
			if e.spOfPin[p] < 0 {
				live = append(live, p)
			}
		}
		bucket = live
		if len(bucket) == 0 {
			continue
		}
		// Bind overlay queue storage serially: map writes must not run
		// inside the kernel (parents at lower levels are read concurrently
		// through the same map).
		for _, p := range bucket {
			if o.pinQ[p] == nil {
				o.pinQ[p] = o.seededPinOverlay(p)
			}
		}
		if cap(sc.changed) < len(bucket) {
			sc.changed = make([]bool, len(bucket))
		}
		sc.changed = sc.changed[:len(bucket)]
		changed := sc.changed
		if o.kernFn == nil {
			o.kernFn = func(id, lo, hi int) {
				snap := &o.scratch.snaps[id]
				b, ch := o.kernBucket, o.scratch.changed
				for i := lo; i < hi; i++ {
					ch[i] = o.recomputePin(b[i], snap)
				}
			}
		}
		o.kernBucket = bucket
		e.kernIndexed(KernelOverlay, l, len(bucket), o.kernFn)
		for i, p := range bucket {
			if !changed[i] {
				continue
			}
			// Each pin enters at most one bucket per Propagate (queued
			// dedupes) and maps to at most one endpoint, so dirty never
			// holds duplicates within a call.
			if ep := e.epOfPin[p]; ep >= 0 {
				o.dirty = append(o.dirty, ep)
			}
			for _, to := range foAdj[foStart[p]:foStart[p+1]] {
				push(to)
			}
		}
	}
	o.evalDirtyEndpoints()
}

// recomputePin rebuilds pin p's Top-K queues inside the overlay from its
// fan-in as seen through the overlay, and reports whether the result differs
// from the previously visible queues (snapshotted into snap). The merge is
// the general path of the forward kernel; for single-fan-in pins it produces
// the same bits as the engine's shiftCopy fast path (same arithmetic, same
// stable descending order), which the differential tests pin down.
func (o *Overlay) recomputePin(p int32, snap *snapshotBuf) bool {
	e := o.e
	k := e.opt.TopK
	// Snapshot the previously visible queues (overlay if this pin was
	// already recomputed in an earlier batch, else base).
	for rf := 0; rf < 2; rf++ {
		arr, mean, std, sps := o.queues(rf, p)
		d := rf * k
		copy(snap.arr[d:d+k], arr)
		copy(snap.mean[d:d+k], mean)
		copy(snap.std[d:d+k], std)
		copy(snap.sp[d:d+k], sps)
	}

	q := o.pinQ[p]
	lo, hi := e.faninStart[p], e.faninStart[p+1]
	for rf := 0; rf < 2; rf++ {
		b := rf * k
		arr := q.arr[b : b+k]
		mean := q.mean[b : b+k]
		std := q.std[b : b+k]
		sps := q.sp[b : b+k]
		clearQueue(arr, sps)
		for pos := lo; pos < hi; pos++ {
			arc := e.faninArc[pos]
			parent := e.faninFrom[pos]
			am, as := o.arcDelay(rf, arc)
			inRFs, n := liberty.Unate(e.faninSense[pos]).InRFs(rf)
			for ri := 0; ri < n; ri++ {
				_, pmean, pstd, psps := o.queues(inRFs[ri], parent)
				for kk := 0; kk < k; kk++ {
					psp := psps[kk]
					if psp == noSP {
						break
					}
					m := pmean[kk] + am
					ps := pstd[kk]
					if m+e.nSigma*(ps+as) <= arr[k-1] {
						continue
					}
					s := math.Sqrt(ps*ps + as*as)
					InsertTopK(arr, mean, std, sps, m+e.nSigma*s, m, s, psp)
				}
			}
		}
	}
	for i := 0; i < 2*k; i++ {
		if q.sp[i] != snap.sp[i] || q.arr[i] != snap.arr[i] ||
			q.mean[i] != snap.mean[i] || q.std[i] != snap.std[i] {
			return true
		}
	}
	return false
}

// evalDirtyEndpoints re-evaluates the slack of every endpoint whose pin
// queues changed, through the engine's pool. The dirty set is sorted so the
// kernel's index space — and therefore the overlay's state — is independent
// of map iteration order.
func (o *Overlay) evalDirtyEndpoints() {
	if len(o.dirty) == 0 {
		return
	}
	e := o.e
	dirty := o.dirty
	slices.Sort(dirty)
	ssp := e.tracer.StartArg(KernelOverlaySlack, "endpoints", int64(len(dirty)))
	defer ssp.End()
	if cap(o.epOut) < len(dirty) {
		o.epOut = make([]float64, len(dirty))
	}
	o.epOut = o.epOut[:len(dirty)]
	out := o.epOut
	if o.slackFn == nil {
		o.slackFn = func(_, lo, hi int) {
			e := o.e
			k := e.opt.TopK
			dirty, out := o.dirty, o.epOut
			for i := lo; i < hi; i++ {
				ep := dirty[i]
				p := e.epPin[ep]
				best := math.Inf(1)
				for rf := 0; rf < 2; rf++ {
					arr, _, _, sps := o.queues(rf, p)
					for kk := 0; kk < k; kk++ {
						sp := sps[kk]
						if sp == noSP {
							break
						}
						adj := e.excLookup(e.spPin[sp], p)
						if adj.False {
							continue
						}
						req := e.epBase[rf][ep] +
							float64(adj.CycleCount()-1)*e.period +
							e.credit(e.spNode[sp], e.epNode[ep])
						if s := req - arr[kk]; s < best {
							best = s
						}
					}
				}
				out[i] = best
			}
		}
	}
	e.kernIndexed(KernelOverlaySlack, -1, len(dirty), o.slackFn)
	grew := false
	for i, ep := range dirty {
		if _, ok := o.epSlack[ep]; !ok {
			o.changedEPs = append(o.changedEPs, ep)
			grew = true
		}
		o.epSlack[ep] = out[i]
	}
	if grew {
		slices.Sort(o.changedEPs)
	}
	o.dirty = o.dirty[:0]
}

// Slack returns endpoint i's slack as seen through the overlay.
func (o *Overlay) Slack(i int32) float64 {
	if s, ok := o.epSlack[i]; ok {
		return s
	}
	return o.e.epSlack[i]
}

// WNS returns the worst negative slack under the overlay (0 when nothing
// violates). The scan visits endpoints in index order, matching the base
// engine's WNS so committed and previewed figures agree bit-for-bit.
func (o *Overlay) WNS() float64 {
	w := 0.0
	for i := range o.e.epSlack {
		if s := o.Slack(int32(i)); s < w {
			w = s
		}
	}
	return w
}

// TNS returns the total negative slack under the overlay, summed in endpoint
// index order like Engine.TNS.
func (o *Overlay) TNS() float64 {
	t := 0.0
	for i := range o.e.epSlack {
		if s := o.Slack(int32(i)); s < 0 {
			t += s
		}
	}
	return t
}

// ChangedEndpoints returns the sorted indices of endpoints whose slack the
// overlay re-evaluated (their cone contained at least one changed pin). The
// returned slice is a fresh copy; hot paths use ChangedEndpointsView.
func (o *Overlay) ChangedEndpoints() []int32 {
	return append([]int32(nil), o.changedEPs...)
}

// ChangedEndpointsView is ChangedEndpoints without the copy: the returned
// slice is owned by the overlay, stays sorted, and is valid until the next
// Propagate, Reset or Rebase. Callers must not mutate or retain it.
func (o *Overlay) ChangedEndpointsView() []int32 { return o.changedEPs }

// TouchedArcs returns the overlaid arc ids in first-annotation order.
func (o *Overlay) TouchedArcs() []int32 {
	return append([]int32(nil), o.touched...)
}

// OverlayStats summarizes the overlay's sparse footprint.
type OverlayStats struct {
	TouchedArcs int // arcs re-annotated
	OverlayPins int // pins with recomputed queues (the reached cone)
	ChangedEPs  int // endpoints re-evaluated
}

// Stats reports the overlay's current sparse footprint.
func (o *Overlay) Stats() OverlayStats {
	return OverlayStats{
		TouchedArcs: len(o.arcDelta),
		OverlayPins: len(o.pinQ),
		ChangedEPs:  len(o.epSlack),
	}
}

// Reset discards all overlay state — the session rollback. The base engine
// is untouched. Maps are cleared in place and queue storage is returned to
// the freelist, so a reset-and-reapply cycle does not reallocate.
func (o *Overlay) Reset() {
	for _, od := range o.arcDelta {
		o.distFree = append(o.distFree, od)
	}
	clear(o.arcDelta)
	o.touched = o.touched[:0]
	o.pending = o.pending[:0]
	o.releasePins()
	clear(o.epSlack)
	o.dirty = o.dirty[:0]
	o.changedEPs = o.changedEPs[:0]
}

// Rebase invalidates the overlay's derived state (queues, slacks) while
// keeping the arc deltas, and schedules every touched arc for
// re-propagation. The serving layer calls this when another session's commit
// changed the base snapshot under this session.
func (o *Overlay) Rebase() {
	o.releasePins()
	clear(o.epSlack)
	o.dirty = o.dirty[:0]
	o.changedEPs = o.changedEPs[:0]
	// Arc deltas are kept verbatim: they are the session's pending intent.
	// A delta that now matches the re-committed base annotation costs only a
	// one-pin wavefront that stops on equality.
	o.pending = append(o.pending[:0], o.touched...)
}

// RebaseStructural re-targets the overlay at a structurally edited
// replacement of its base engine. remap maps the old engine's arc ids to
// e's (-1 = arc removed by the edit); nil means identity (an insert-only
// edit appends arcs without renumbering). Arc deltas on surviving arcs are
// kept — SetArcDelay stores absolute per-rf delays, so the values remain
// meaningful under the new engine — re-keyed through remap and scheduled for
// re-propagation; deltas on removed arcs are dropped to the freelist. All
// derived state (queues, slacks) is invalidated like Rebase, and the
// wavefront scratch is discarded because the new engine's level count
// differs. Pin-queue freelist storage survives: its size depends only on
// TopK, which a structural edit never changes.
func (o *Overlay) RebaseStructural(e *Engine, remap []int32) {
	o.releasePins()
	clear(o.epSlack)
	o.dirty = o.dirty[:0]
	o.changedEPs = o.changedEPs[:0]
	o.scratch = nil

	// Re-key surviving deltas. Old and new id ranges can overlap after a
	// removal compaction, so drain the map first and reinsert.
	oldTouched := append([]int32(nil), o.touched...)
	oldDeltas := make([]*[2]num.Dist, len(oldTouched))
	for i, a := range oldTouched {
		oldDeltas[i] = o.arcDelta[a]
	}
	clear(o.arcDelta)
	o.touched = o.touched[:0]
	o.pending = o.pending[:0]
	for i, a := range oldTouched {
		na := a
		if remap != nil {
			na = remap[a]
		}
		if na < 0 {
			o.distFree = append(o.distFree, oldDeltas[i])
			continue
		}
		o.arcDelta[na] = oldDeltas[i]
		o.touched = append(o.touched, na)
		o.pending = append(o.pending, na)
	}
	o.e = e
}

// Commit folds the overlay's arc deltas into the base engine, re-propagates
// the affected cone incrementally, re-evaluates every endpoint slack, and
// resets the overlay. The caller must hold exclusive access to the base
// engine (no concurrent overlay may be evaluating). The resulting base state
// is bit-identical to a full Propagate + EvalSlacks under the same
// annotations, by the incremental-propagation guarantee.
func (o *Overlay) Commit() {
	if len(o.touched) == 0 {
		return
	}
	e := o.e
	sp := e.tracer.StartArg("overlay-commit", "arcs", int64(len(o.touched)))
	defer sp.End()
	for _, arc := range o.touched {
		od := o.arcDelta[arc]
		for rf := 0; rf < 2; rf++ {
			e.SetArcDelay(arc, rf, od[rf])
		}
	}
	e.PropagateIncremental(o.touched)
	e.evalSlacks()
	if e.hold != nil {
		e.evalHoldSlacks()
	}
	o.Reset()
}
