package core

// This file maps raw arc gradients onto the objects the PD applications
// optimize: stages (a cell plus its driven net) for gate sizing, and net
// arcs for timing-driven placement (paper §III-H/I).

// StageGradient is the aggregated timing gradient of one cell's stage: the
// gradient sum of its cell arcs and the net arcs it drives (paper §III-H).
// Grad is ≤ 0; larger magnitude means more TNS leverage.
type StageGradient struct {
	Cell int32
	Grad float64
}

// StageGradients aggregates the last Backward's arc gradients per stage and
// returns the stages with non-zero gradient, in ascending cell order. The
// arc→stage map is cached; accumulation walks arcs in id order into a dense
// per-cell buffer, so the output is deterministic (the map-based original
// iterated in random order, making float sums run-dependent). This is the
// ranking signal INSTA-Size sorts by magnitude.
func (e *Engine) StageGradients() []StageGradient {
	if e.arcStage == nil {
		e.arcStage = make([]int32, len(e.arcFrom))
		maxCell := int32(-1)
		for arc := range e.arcFrom {
			var cell int32
			if e.arcKind[arc] == 0 {
				cell = e.arcCell[arc]
			} else {
				// Net arc: attribute to the driving cell (-1 when driven by a
				// primary input).
				cell = e.ownerOfPin(e.arcFrom[arc])
			}
			e.arcStage[arc] = cell
			if cell > maxCell {
				maxCell = cell
			}
		}
		e.stageAcc = make([]float64, maxCell+1)
	}
	acc := e.stageAcc
	clearFloats(acc)
	for arc := range e.arcFrom {
		if cell := e.arcStage[arc]; cell >= 0 {
			acc[cell] += e.TimingGradient(int32(arc))
		}
	}
	var out []StageGradient
	for c, g := range acc {
		if g != 0 {
			out = append(out, StageGradient{Cell: int32(c), Grad: g})
		}
	}
	return out
}

// ownerOfPin returns the cell owning pin p, derived from cell-arc endpoints
// (-1 for port pins and pins not touched by any cell arc).
func (e *Engine) ownerOfPin(p int32) int32 {
	if e.pinOwner == nil {
		e.pinOwner = make([]int32, e.numPins)
		for i := range e.pinOwner {
			e.pinOwner[i] = -1
		}
		for arc := range e.arcFrom {
			if e.arcKind[arc] != 0 {
				continue
			}
			e.pinOwner[e.arcFrom[arc]] = e.arcCell[arc]
			e.pinOwner[e.arcTo[arc]] = e.arcCell[arc]
		}
	}
	return e.pinOwner[p]
}

// NetArcGrad carries one interconnect arc's timing gradient together with
// its driver and sink pins — the (f_k, t_k, g_k) triples of the paper's
// placement objective (Eq. 7).
type NetArcGrad struct {
	Arc      int32
	From, To int32
	Net      int32
	Grad     float64 // ≤ 0
}

// NetArcGradients returns every net arc with non-zero timing gradient from
// the last Backward call.
func (e *Engine) NetArcGradients() []NetArcGrad {
	var out []NetArcGrad
	for arc := range e.arcFrom {
		if e.arcKind[arc] != 1 {
			continue
		}
		g := e.TimingGradient(int32(arc))
		if g == 0 {
			continue
		}
		out = append(out, NetArcGrad{
			Arc: int32(arc), From: e.arcFrom[arc], To: e.arcTo[arc],
			Net: e.arcNet[arc], Grad: g,
		})
	}
	return out
}
