package core

// Incremental propagation. The paper's INSTA always re-propagates the full
// graph — GPU parallelism makes each level O(1), so the total cost is just
// the level count. On a CPU the trade-off differs: after a local
// re-annotation (one estimate_eco batch touches a few dozen arcs) only the
// fan-out cone of the touched arcs can change, so re-processing that cone
// level by level and stopping wavefronts whose queues converge is much
// cheaper. This file adds that CPU-oriented mode as an ablation against the
// paper's full-propagation design (BenchmarkAblation_IncrementalPropagate).

// fanoutCSR lazily builds the pin fan-out adjacency (the forward kernel only
// needs fan-in): slot i of [foStart[p], foStart[p+1]) holds destination pin
// foAdj[i] reached through arc foArc[i]. The backward gather phase relies on
// this slot order being fixed for its deterministic float summation.
func (e *Engine) fanoutCSR() (start, adj []int32) {
	if e.foStart != nil {
		return e.foStart, e.foAdj
	}
	n := e.numPins
	counts := make([]int32, n+1)
	for i := range e.arcFrom {
		counts[e.arcFrom[i]+1]++
	}
	start = make([]int32, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + counts[i+1]
	}
	adj = make([]int32, len(e.arcFrom))
	arcs := make([]int32, len(e.arcFrom))
	cursor := make([]int32, n)
	for i := range e.arcFrom {
		f := e.arcFrom[i]
		adj[start[f]+cursor[f]] = e.arcTo[i]
		arcs[start[f]+cursor[f]] = int32(i)
		cursor[f]++
	}
	e.foStart, e.foAdj, e.foArc = start, adj, arcs
	return start, adj
}

// PropagateIncremental re-propagates only the fan-out cone of the given
// arcs, assuming every other annotation is unchanged since the last
// Propagate. A wavefront stops at pins whose Top-K queues come out
// identical. Hold queues, when enabled, are updated over the same cone.
//
// Each level's bucket is recomputed through the scheduler pool (pins are
// independent, exactly as in the full forward kernel); the wavefront
// expansion that follows is serial and walks the bucket in order, so the
// resulting state is bit-identical to a full Propagate for any worker count.
//
// Callers batching SetArcDelay updates pass the touched arc ids here instead
// of calling Propagate.
func (e *Engine) PropagateIncremental(arcs []int32) {
	if len(arcs) == 0 {
		return
	}
	sp := e.tracer.StartArg(kIncremental, "arcs", int64(len(arcs)))
	defer sp.End()
	sc := e.incScratch()
	for _, a := range arcs {
		e.incPush(sc, e.arcTo[a])
	}
	e.runIncrementalWave(sc)
}

// PropagateIncrementalPins is PropagateIncremental seeded by pins instead of
// arcs: every listed pin is recomputed from its (possibly restructured)
// fan-in and the wavefront expands downstream from there. This is the
// re-propagation entry point of seeded engine construction after a
// structural edit (NewEngineSeeded), where the changed unit is a pin's
// fan-in set rather than a single arc's annotation.
func (e *Engine) PropagateIncrementalPins(pins []int32) {
	if len(pins) == 0 {
		return
	}
	sp := e.tracer.StartArg(kIncremental, "pins", int64(len(pins)))
	defer sp.End()
	sc := e.incScratch()
	for _, p := range pins {
		e.incPush(sc, p)
	}
	e.runIncrementalWave(sc)
}

// incScratch returns the engine's reset incremental-propagation scratch.
// All wavefront state lives in engine-owned scratch: incremental propagation
// mutates base tensors, so calls are exclusive and the scratch is reused
// allocation-free across calls (the serving layer's commit path runs
// thousands of these).
func (e *Engine) incScratch() *propScratch {
	if e.inc == nil {
		e.inc = newPropScratch(e.lv.NumLevels, e.numPins, e.scratchWidth(), e.opt.TopK)
	}
	e.inc.reset()
	return e.inc
}

// incPush enqueues pin p into its level bucket once.
func (e *Engine) incPush(sc *propScratch, p int32) {
	if !sc.markQueued(p) {
		sc.buckets[e.lv.Level[p]] = append(sc.buckets[e.lv.Level[p]], p)
	}
}

// runIncrementalWave walks the pre-seeded level buckets in order, recomputing
// each bucket through the pool and expanding wavefronts whose queues changed.
func (e *Engine) runIncrementalWave(sc *propScratch) {
	foStart, foAdj := e.fanoutCSR()
	for l := 0; l < len(sc.buckets); l++ {
		bucket := sc.buckets[l]
		if len(bucket) == 0 {
			continue
		}
		if cap(sc.changed) < len(bucket) {
			sc.changed = make([]bool, len(bucket))
		}
		sc.changed = sc.changed[:len(bucket)]
		changed := sc.changed
		// The kernel closure is bound once per scratch and reads its
		// per-launch state through sc — a literal here would escape into the
		// pool's job slot and cost one allocation per level.
		if sc.kernFn == nil {
			sc.kernFn = func(id, lo, hi int) {
				snap := &sc.snaps[id]
				b, ch := sc.bucket, sc.changed
				for i := lo; i < hi; i++ {
					p := b[i]
					c := false
					// Late queues.
					e.snapshotPin(p, snap, false)
					e.propagatePin(p)
					if !e.snapshotEqual(p, snap, false) {
						c = true
					}
					// Early queues.
					if e.hold != nil {
						e.snapshotPin(p, snap, true)
						e.propagatePinMin(p)
						if !e.snapshotEqual(p, snap, true) {
							c = true
						}
					}
					ch[i] = c
				}
			}
		}
		sc.bucket = bucket
		e.kernIndexed(kIncremental, l, len(bucket), sc.kernFn)
		for i, p := range bucket {
			if changed[i] {
				for _, to := range foAdj[foStart[p]:foStart[p+1]] {
					e.incPush(sc, to)
				}
			}
		}
	}
}

// snapshotBuf holds one pin's queues across a recompute.
type snapshotBuf struct {
	arr, mean, std []float64
	sp             []int32
}

func (e *Engine) snapshotPin(p int32, s *snapshotBuf, early bool) {
	k := e.opt.TopK
	for rf := 0; rf < 2; rf++ {
		b := e.base(rf, p)
		dst := rf * k
		if early {
			copy(s.arr[dst:dst+k], e.hold.negArr[b:b+k])
			copy(s.sp[dst:dst+k], e.hold.sp[b:b+k])
			continue
		}
		copy(s.arr[dst:dst+k], e.topArr[b:b+k])
		copy(s.mean[dst:dst+k], e.topMean[b:b+k])
		copy(s.std[dst:dst+k], e.topStd[b:b+k])
		copy(s.sp[dst:dst+k], e.topSP[b:b+k])
	}
}

func (e *Engine) snapshotEqual(p int32, s *snapshotBuf, early bool) bool {
	k := e.opt.TopK
	for rf := 0; rf < 2; rf++ {
		b := e.base(rf, p)
		src := rf * k
		for i := 0; i < k; i++ {
			if early {
				if e.hold.sp[b+i] != s.sp[src+i] || e.hold.negArr[b+i] != s.arr[src+i] {
					return false
				}
				continue
			}
			if e.topSP[b+i] != s.sp[src+i] || e.topArr[b+i] != s.arr[src+i] ||
				e.topMean[b+i] != s.mean[src+i] || e.topStd[b+i] != s.std[src+i] {
				return false
			}
		}
	}
	return true
}
