// Package sdcio reads and writes the Synopsys Design Constraints (SDC)
// subset this reproduction uses: create_clock, clock uncertainties, IO
// timing context, false paths and multicycle paths. Input-delay sigma (a
// POCV attribute with no standard SDC spelling) travels in an `#insta:`
// comment so constraint files round-trip losslessly.
package sdcio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"insta/internal/netlist"
	"insta/internal/sdc"
)

// Write emits the constraints as SDC text, resolving pin ids to names via d.
func Write(w io.Writer, con *sdc.Constraints, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# insta SDC\n")
	fmt.Fprintf(bw, "create_clock -name %s -period %.17g\n", con.Clock.Name, con.Clock.Period)
	if con.Clock.Uncertainty != 0 {
		fmt.Fprintf(bw, "set_clock_uncertainty -setup %.17g [get_clocks %s]\n",
			con.Clock.Uncertainty, con.Clock.Name)
	}
	if con.Clock.HoldUncertainty != 0 {
		fmt.Fprintf(bw, "set_clock_uncertainty -hold %.17g [get_clocks %s]\n",
			con.Clock.HoldUncertainty, con.Clock.Name)
	}

	for _, p := range sortedPins(con.InputDelay) {
		dist := con.InputDelay[p]
		name := d.Pins[p].Name
		fmt.Fprintf(bw, "set_input_delay %.17g [get_ports %s]\n", dist.Mean, name)
		if dist.Std != 0 {
			fmt.Fprintf(bw, "#insta:input_sigma %s %.17g\n", name, dist.Std)
		}
	}
	for _, p := range sortedPinsF(con.InputSlew) {
		fmt.Fprintf(bw, "set_input_transition %.17g [get_ports %s]\n", con.InputSlew[p], d.Pins[p].Name)
	}
	for _, p := range sortedPinsF(con.OutputDelay) {
		fmt.Fprintf(bw, "set_output_delay %.17g [get_ports %s]\n", con.OutputDelay[p], d.Pins[p].Name)
	}
	for _, p := range sortedPinsF(con.OutputLoad) {
		fmt.Fprintf(bw, "set_load %.17g [get_ports %s]\n", con.OutputLoad[p], d.Pins[p].Name)
	}
	for _, ex := range con.Exceptions {
		var b strings.Builder
		switch ex.Kind {
		case sdc.FalsePath:
			b.WriteString("set_false_path")
		case sdc.Multicycle:
			fmt.Fprintf(&b, "set_multicycle_path %d", ex.Cycles)
		}
		if len(ex.From) > 0 {
			fmt.Fprintf(&b, " -from [get_pins {%s}]", joinPinNames(d, ex.From))
		}
		if len(ex.To) > 0 {
			fmt.Fprintf(&b, " -to [get_pins {%s}]", joinPinNames(d, ex.To))
		}
		fmt.Fprintf(bw, "%s\n", b.String())
	}
	return bw.Flush()
}

func joinPinNames(d *netlist.Design, pins []netlist.PinID) string {
	names := make([]string, len(pins))
	for i, p := range pins {
		names[i] = d.Pins[p].Name
	}
	return strings.Join(names, " ")
}

func sortedPins[V any](m map[netlist.PinID]V) []netlist.PinID {
	out := make([]netlist.PinID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func sortedPinsF(m map[netlist.PinID]float64) []netlist.PinID { return sortedPins(m) }

// Read parses SDC text against design d.
func Read(r io.Reader, d *netlist.Design) (*sdc.Constraints, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	con := sdc.New(sdc.Clock{})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#insta:input_sigma "):
			f := strings.Fields(strings.TrimPrefix(line, "#insta:input_sigma "))
			if len(f) != 2 {
				return nil, fmt.Errorf("sdcio: line %d: bad input_sigma", lineNo)
			}
			p, err := lookupPin(d, f[0], lineNo)
			if err != nil {
				return nil, err
			}
			sigma, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fmt.Errorf("sdcio: line %d: %w", lineNo, err)
			}
			dist := con.InputDelay[p]
			dist.Std = sigma
			con.InputDelay[p] = dist
		case strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "create_clock"):
			args := tokenize(line)
			for i := 0; i < len(args); i++ {
				switch args[i] {
				case "-name":
					i++
					con.Clock.Name = arg(args, i)
				case "-period":
					i++
					v, err := strconv.ParseFloat(arg(args, i), 64)
					if err != nil {
						return nil, fmt.Errorf("sdcio: line %d: bad period: %w", lineNo, err)
					}
					con.Clock.Period = v
				}
			}
			if con.Clock.Period <= 0 {
				return nil, fmt.Errorf("sdcio: line %d: create_clock without positive -period", lineNo)
			}
		case strings.HasPrefix(line, "set_clock_uncertainty"):
			args := tokenize(line)
			hold := false
			val := 0.0
			seen := false
			for i := 1; i < len(args); i++ {
				switch {
				case args[i] == "-hold":
					hold = true
				case args[i] == "-setup":
				case strings.HasPrefix(args[i], "get_clocks"), args[i] == con.Clock.Name:
				default:
					if v, err := strconv.ParseFloat(args[i], 64); err == nil {
						val, seen = v, true
					}
				}
			}
			if !seen {
				return nil, fmt.Errorf("sdcio: line %d: set_clock_uncertainty without value", lineNo)
			}
			if hold {
				con.Clock.HoldUncertainty = val
			} else {
				con.Clock.Uncertainty = val
			}
		case strings.HasPrefix(line, "set_input_delay"):
			p, v, err := parsePortValue(d, line, "set_input_delay", lineNo)
			if err != nil {
				return nil, err
			}
			dist := con.InputDelay[p]
			dist.Mean = v
			con.InputDelay[p] = dist
		case strings.HasPrefix(line, "set_input_transition"):
			p, v, err := parsePortValue(d, line, "set_input_transition", lineNo)
			if err != nil {
				return nil, err
			}
			con.InputSlew[p] = v
		case strings.HasPrefix(line, "set_output_delay"):
			p, v, err := parsePortValue(d, line, "set_output_delay", lineNo)
			if err != nil {
				return nil, err
			}
			con.OutputDelay[p] = v
		case strings.HasPrefix(line, "set_load"):
			p, v, err := parsePortValue(d, line, "set_load", lineNo)
			if err != nil {
				return nil, err
			}
			con.OutputLoad[p] = v
		case strings.HasPrefix(line, "set_false_path"), strings.HasPrefix(line, "set_multicycle_path"):
			ex, err := parseException(d, line, lineNo)
			if err != nil {
				return nil, err
			}
			con.Exceptions = append(con.Exceptions, ex)
		default:
			return nil, fmt.Errorf("sdcio: line %d: unsupported command %q", lineNo, firstWord(line))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if con.Clock.Period <= 0 {
		return nil, fmt.Errorf("sdcio: no create_clock found")
	}
	return con, nil
}

// tokenize splits on whitespace treating [get_x {a b}] and [get_x a] as
// bracketed groups whose payload tokens are returned verbatim after a
// "get_*" marker token.
func tokenize(line string) []string {
	replacer := strings.NewReplacer("[", " ", "]", " ", "{", " ", "}", " ")
	return strings.Fields(replacer.Replace(line))
}

func firstWord(line string) string {
	if i := strings.IndexByte(line, ' '); i > 0 {
		return line[:i]
	}
	return line
}

func arg(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}

func lookupPin(d *netlist.Design, name string, lineNo int) (netlist.PinID, error) {
	p, ok := d.PinByName(name)
	if !ok {
		return 0, fmt.Errorf("sdcio: line %d: unknown pin/port %q", lineNo, name)
	}
	return p, nil
}

// parsePortValue handles `cmd <value> [get_ports name]`.
func parsePortValue(d *netlist.Design, line, cmd string, lineNo int) (netlist.PinID, float64, error) {
	args := tokenize(line)
	var val float64
	seenVal := false
	var pin netlist.PinID = netlist.NoPin
	for i := 1; i < len(args); i++ {
		a := args[i]
		if a == "get_ports" || a == "get_pins" {
			i++
			p, err := lookupPin(d, arg(args, i), lineNo)
			if err != nil {
				return 0, 0, err
			}
			pin = p
			continue
		}
		if v, err := strconv.ParseFloat(a, 64); err == nil && !seenVal {
			val, seenVal = v, true
		}
	}
	if !seenVal || pin == netlist.NoPin {
		return 0, 0, fmt.Errorf("sdcio: line %d: malformed %s", lineNo, cmd)
	}
	return pin, val, nil
}

func parseException(d *netlist.Design, line string, lineNo int) (sdc.Exception, error) {
	ex := sdc.Exception{}
	if strings.HasPrefix(line, "set_multicycle_path") {
		ex.Kind = sdc.Multicycle
	}
	args := tokenize(line)
	mode := ""
	for i := 1; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-from":
			mode = "from"
		case a == "-to":
			mode = "to"
		case a == "get_pins" || a == "get_ports":
			continue
		default:
			if ex.Kind == sdc.Multicycle && ex.Cycles == 0 {
				if v, err := strconv.Atoi(a); err == nil {
					ex.Cycles = v
					continue
				}
			}
			p, err := lookupPin(d, a, lineNo)
			if err != nil {
				return ex, err
			}
			switch mode {
			case "from":
				ex.From = append(ex.From, p)
			case "to":
				ex.To = append(ex.To, p)
			default:
				return ex, fmt.Errorf("sdcio: line %d: pin %q outside -from/-to", lineNo, a)
			}
		}
	}
	if len(ex.From) == 0 && len(ex.To) == 0 {
		return ex, fmt.Errorf("sdcio: line %d: exception without -from or -to", lineNo)
	}
	if ex.Kind == sdc.Multicycle && ex.Cycles < 1 {
		return ex, fmt.Errorf("sdcio: line %d: multicycle without cycle count", lineNo)
	}
	return ex, nil
}
