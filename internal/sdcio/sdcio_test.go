package sdcio

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"insta/internal/bench"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/sdc"
)

func genDesign(t testing.TB) *bench.Design {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "sdctest", Seed: 5, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 5, Layers: 3, Width: 5,
		CrossFrac: 0.1, NumPIs: 3, NumPOs: 3,
		Period: 800, Uncertainty: 12, FalsePaths: 2, Multicycles: 1, Die: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Con.Clock.HoldUncertainty = 3
	return b
}

func TestRoundTrip(t *testing.T) {
	b := genDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, b.Con, b.D); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), b.D)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if got.Clock != b.Con.Clock {
		t.Errorf("clock %+v != %+v", got.Clock, b.Con.Clock)
	}
	if !reflect.DeepEqual(got.InputDelay, b.Con.InputDelay) {
		t.Error("input delays differ")
	}
	if !reflect.DeepEqual(got.InputSlew, b.Con.InputSlew) {
		t.Error("input slews differ")
	}
	if !reflect.DeepEqual(got.OutputDelay, b.Con.OutputDelay) {
		t.Error("output delays differ")
	}
	if !reflect.DeepEqual(got.OutputLoad, b.Con.OutputLoad) {
		t.Error("output loads differ")
	}
	// Exceptions order-insensitively equal.
	normalize := func(exs []sdc.Exception) []string {
		var out []string
		for _, e := range exs {
			out = append(out, exString(e))
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(normalize(got.Exceptions), normalize(b.Con.Exceptions)) {
		t.Errorf("exceptions differ:\n%v\n%v", got.Exceptions, b.Con.Exceptions)
	}
}

func exString(e sdc.Exception) string {
	return strings.Join([]string{
		e.Kind.String(),
		pinList(e.From),
		pinList(e.To),
		string(rune('0' + e.Cycles)),
	}, "|")
}

func pinList(ps []netlist.PinID) string {
	var ss []string
	for _, p := range ps {
		ss = append(ss, string(rune('A'+int(p)%26)))
	}
	return strings.Join(ss, ",")
}

func TestReadRejectsBadInput(t *testing.T) {
	b := genDesign(t)
	cases := map[string]string{
		"no clock":        "set_input_delay 5 [get_ports pi0]\n",
		"bad command":     "create_clock -name c -period 10\nfrobnicate 5\n",
		"unknown pin":     "create_clock -name c -period 10\nset_input_delay 5 [get_ports nope]\n",
		"bad multicycle":  "create_clock -name c -period 10\nset_multicycle_path -from [get_pins pi0]\n",
		"orphan pin":      "create_clock -name c -period 10\nset_false_path [get_pins pi0]\n",
		"bad uncertainty": "create_clock -name c -period 10\nset_clock_uncertainty -setup [get_clocks c]\n",
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc), b.D); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteReadableText(t *testing.T) {
	b := genDesign(t)
	var buf bytes.Buffer
	if err := Write(&buf, b.Con, b.D); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"create_clock", "set_input_delay", "set_false_path", "set_multicycle_path", "-hold"} {
		if !strings.Contains(text, want) {
			t.Errorf("SDC text missing %q", want)
		}
	}
}
