package place

import (
	"math"
	"sort"

	"insta/internal/netlist"
)

// Legalize snaps movable cells onto non-overlapping row sites with a greedy
// Tetris-style sweep: cells are processed in x order and assigned to the row
// slot minimizing their displacement. This plays ABCDPlace's role of
// producing the post-legalization numbers Table III reports.
func (p *Placer) Legalize() {
	rows := int(p.H) // one site tall rows
	if rows < 1 {
		rows = 1
	}
	cursor := make([]float64, rows) // next free x per row

	order := append([]netlist.CellID(nil), p.movable...)
	sort.Slice(order, func(a, b int) bool {
		ca, cb := &p.d.Cells[order[a]], &p.d.Cells[order[b]]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return order[a] < order[b]
	})

	for _, c := range order {
		cell := &p.d.Cells[c]
		bestRow := -1
		bestCost := math.Inf(1)
		bestX := 0.0
		homeRow := int(cell.Y)
		// Scan rows outward from the cell's current row.
		for dr := 0; dr < rows; dr++ {
			candidates := []int{homeRow - dr, homeRow + dr}
			if dr == 0 {
				candidates = candidates[:1]
			}
			for _, r := range candidates {
				if r < 0 || r >= rows {
					continue
				}
				x := math.Max(cursor[r], 0)
				if x+cell.Width > p.W {
					continue
				}
				if cx := cell.X; cx > x {
					x = math.Min(cx, p.W-cell.Width)
				}
				cost := math.Abs(x-cell.X) + math.Abs(float64(r)-cell.Y)
				if cost < bestCost {
					bestCost, bestRow, bestX = cost, r, x
				}
			}
			if bestRow >= 0 && float64(dr) > bestCost {
				break // no farther row can beat the current best
			}
		}
		if bestRow < 0 {
			// Fall back: squeeze into the least-full row.
			bestRow = 0
			for r := 1; r < rows; r++ {
				if cursor[r] < cursor[bestRow] {
					bestRow = r
				}
			}
			bestX = cursor[bestRow]
		}
		cell.X = bestX
		cell.Y = float64(bestRow)
		cursor[bestRow] = bestX + cell.Width
	}
}

// HPWL returns the design's half-perimeter wirelength over all nets with at
// least one sink.
func (p *Placer) HPWL() float64 {
	var total float64
	for ni := range p.d.Nets {
		net := &p.d.Nets[ni]
		if len(net.Sinks) == 0 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, pin := range p.netPins(net) {
			x, y := p.d.PinPos(pin)
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
		total += (maxX - minX) + (maxY - minY)
	}
	return total
}

// OverlapCount returns the number of overlapping same-row cell pairs — zero
// after a successful legalization (within-row abutment allowed).
func (p *Placer) OverlapCount() int {
	type item struct {
		x, w float64
	}
	byRow := map[int][]item{}
	for _, c := range p.movable {
		cell := &p.d.Cells[c]
		byRow[int(cell.Y)] = append(byRow[int(cell.Y)], item{cell.X, cell.Width})
	}
	count := 0
	for _, row := range byRow {
		sort.Slice(row, func(a, b int) bool { return row[a].x < row[b].x })
		for i := 1; i < len(row); i++ {
			if row[i-1].x+row[i-1].w > row[i].x+1e-9 {
				count++
			}
		}
	}
	return count
}
