// Package place implements the timing-driven analytic global placement
// substrate of the paper's third application (§III-I, Table III, Fig. 9): a
// DREAMPlace-style smooth-wirelength + density optimizer with three timing
// modes — plain (DP), momentum net weighting (DP 4.0), and INSTA-Place's
// arc-gradient objective (Eqs. 7-8) — plus a greedy row legalizer and HPWL
// reporting. The reference engine plays OpenTimer's role as the
// timing-graph refresher every TimerInterval iterations.
package place

import (
	"fmt"
	"math"
	"time"

	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/num"
	"insta/internal/refsta"
	"insta/internal/sched"
)

// Mode selects the timing strategy.
type Mode int

// Placement modes.
const (
	ModePlain     Mode = iota // wirelength + density only (DREAMPlace)
	ModeNetWeight             // slack-driven momentum net weighting (DREAMPlace 4.0)
	ModeInsta                 // INSTA-Place arc-gradient timing objective
)

func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "DP"
	case ModeNetWeight:
		return "DP4.0-NW"
	default:
		return "INSTA-Place"
	}
}

// Config tunes a placement run.
type Config struct {
	Mode          Mode
	Iterations    int
	TimerInterval int     // timing refresh cadence; the paper uses 15
	LambdaRC      float64 // Eq. 7's RC scaling; the paper uses ~0.001
	Gamma         float64 // weighted-average wirelength smoothing, in sites
	TargetDensity float64
	BinsX, BinsY  int
	LR            float64 // base step size, sites
	Momentum      float64
	NWAlpha       float64 // net-weighting momentum (DP4.0)
	NWBeta        float64 // net-weighting criticality strength
	// TimingWarmup is the fraction of iterations spent on pure
	// wirelength+density before the timing term engages (both timing modes);
	// criticality measured on a still-random placement is noise.
	TimingWarmup float64
	// TimingStrength scales the Eq. 8 balance factor; 1.0 makes the timing
	// gradient norm equal to the default objective's.
	TimingStrength float64
	// DensityOff disables the density term (diagnostics only).
	DensityOff bool
	// Workers sizes the placer's scheduler pool for the wirelength-gradient
	// and position-update kernels; 0 means NumCPU. In INSTA mode the engine's
	// pool is shared instead, so timing and placement kernels reuse the same
	// workers.
	Workers int
}

// DefaultConfig returns settings mirroring the paper's placement setup.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:           mode,
		Iterations:     240,
		TimerInterval:  15,
		LambdaRC:       0.001,
		Gamma:          8,
		TargetDensity:  0.65,
		BinsX:          16,
		BinsY:          16,
		LR:             0.45,
		Momentum:       0.85,
		NWAlpha:        0.75,
		NWBeta:         2.0,
		TimingWarmup:   0.3,
		TimingStrength: 0.05,
	}
}

// Breakdown records the wall-clock split of one timing-refresh iteration
// (the Fig. 9 comparison).
type Breakdown struct {
	Timer    time.Duration // reference-engine timing refresh (OpenTimer role)
	Transfer time.Duration // delay re-annotation into INSTA ("data transfer")
	Weights  time.Duration // gradient/weight computation (backward or NW update)
	Step     time.Duration // one placement gradient step
}

// Total sums the phases.
func (b Breakdown) Total() time.Duration { return b.Timer + b.Transfer + b.Weights + b.Step }

// Result summarizes one placement flow.
type Result struct {
	HPWL          float64 // post-legalization half-perimeter wirelength
	WNS           float64 // post-legalization signoff values (reference engine)
	TNS           float64
	NumViolations int
	Runtime       time.Duration
	LastBreakdown Breakdown // phase split of the final timing-refresh iteration
}

// Placer drives one design through global placement.
type Placer struct {
	d    *netlist.Design
	ref  *refsta.Engine
	eng  *core.Engine // INSTA mode only
	cfg  Config
	W, H float64 // placement region (0,0)-(W,H)

	movable []netlist.CellID
	vx, vy  []float64 // momentum state per movable cell

	netW    []float64         // per-net weight (net-weighting mode)
	arcW    []core.NetArcGrad // raw arc gradients of the last refresh (INSTA mode)
	arcWSm  map[int32]arcPull // momentum-smoothed arc pulls (INSTA mode)
	lambda2 float64           // Eq. 8 balance factor

	// Dense gradient state, indexed by CellID / PinID. The wirelength kernel
	// is two-phase for parallel determinism: nets scatter into the per-pin
	// scratch (each pin belongs to exactly one net), then cells gather their
	// pins' contributions in pin-list order.
	gradX, gradY []float64
	pinGX, pinGY []float64

	pool *sched.Pool // engine's pool in INSTA mode, own pool otherwise
}

// New builds a placer over an initialized reference engine. The region is
// sized from total cell area at the configured target density. In INSTA
// mode, eng must be an INSTA engine initialized from ref's extraction.
func New(ref *refsta.Engine, eng *core.Engine, cfg Config) (*Placer, error) {
	if cfg.Mode == ModeInsta && eng == nil {
		return nil, fmt.Errorf("place: INSTA mode requires a core engine")
	}
	d := ref.D
	var area, maxWidth float64
	var movable []netlist.CellID
	for i := range d.Cells {
		if d.Cells[i].Fixed {
			continue
		}
		movable = append(movable, netlist.CellID(i))
		area += d.Cells[i].Width
		if d.Cells[i].Width > maxWidth {
			maxWidth = d.Cells[i].Width
		}
	}
	side := math.Max(math.Sqrt(area/cfg.TargetDensity), 2*maxWidth)
	p := &Placer{
		d: d, ref: ref, eng: eng, cfg: cfg,
		W: side, H: side,
		movable: movable,
		vx:      make([]float64, len(movable)),
		vy:      make([]float64, len(movable)),
		netW:    make([]float64, len(d.Nets)),
		gradX:   make([]float64, len(d.Cells)),
		gradY:   make([]float64, len(d.Cells)),
		pinGX:   make([]float64, len(d.Pins)),
		pinGY:   make([]float64, len(d.Pins)),
		arcWSm:  make(map[int32]arcPull),
		lambda2: 1,
	}
	if eng != nil {
		p.pool = eng.Pool()
	} else {
		p.pool = sched.New(cfg.Workers, 0)
	}
	for i := range p.netW {
		p.netW[i] = 1
	}
	// Clamp the initial placement into the region.
	for _, c := range movable {
		d.Cells[c].X = num.Clamp(d.Cells[c].X, 0, p.W)
		d.Cells[c].Y = num.Clamp(d.Cells[c].Y, 0, p.H)
	}
	for pi := range d.Pins {
		if d.Pins[pi].Cell == netlist.NoCell {
			d.Pins[pi].X = num.Clamp(d.Pins[pi].X, 0, p.W)
			d.Pins[pi].Y = num.Clamp(d.Pins[pi].Y, 0, p.H)
		}
	}
	return p, nil
}

// Run executes the full flow: global placement iterations with periodic
// timing refresh, then legalization and a final signoff evaluation.
func (p *Placer) Run() Result {
	start := time.Now()
	var last Breakdown
	warmup := int(p.cfg.TimingWarmup * float64(p.cfg.Iterations))
	for it := 0; it < p.cfg.Iterations; it++ {
		var bd Breakdown
		if p.cfg.Mode != ModePlain && it >= warmup && (it-warmup)%p.cfg.TimerInterval == 0 {
			bd = p.RefreshTiming()
		}
		t0 := time.Now()
		p.Step(it)
		bd.Step = time.Since(t0)
		if bd.Timer > 0 {
			last = bd
		}
	}
	p.Legalize()
	p.refreshReference()
	return Result{
		HPWL:          p.HPWL(),
		WNS:           p.ref.WNS(),
		TNS:           p.ref.TNS(),
		NumViolations: p.ref.NumViolations(),
		Runtime:       time.Since(start),
		LastBreakdown: last,
	}
}

// refreshReference rebuilds parasitics from current positions and re-runs
// the reference engine (the OpenTimer refresh of §III-I).
func (p *Placer) refreshReference() {
	ids := make([]netlist.NetID, len(p.d.Nets))
	for i := range ids {
		ids[i] = netlist.NetID(i)
	}
	p.ref.RefreshNetParasitics(ids)
	p.ref.UpdateTimingFull()
}

// RefreshTiming refreshes the reference timing view and recomputes the
// mode's timing weights, returning the phase breakdown (Fig. 9). Run calls
// this on the TimerInterval cadence; it is exported for benchmarks and
// custom placement drivers.
func (p *Placer) RefreshTiming() Breakdown {
	var bd Breakdown
	t0 := time.Now()
	p.refreshReference()
	bd.Timer = time.Since(t0)

	switch p.cfg.Mode {
	case ModeNetWeight:
		t0 = time.Now()
		pinSlacks := p.ref.PinSlacks()
		netSlack := refsta.NetSlack(p.ref, pinSlacks)
		wns := p.ref.WNS()
		if wns >= 0 {
			wns = -1
		}
		for i, s := range netSlack {
			crit := 0.0
			if !math.IsInf(s, 0) && s < 0 {
				crit = s / wns // in (0, 1]
			}
			target := 1 + p.cfg.NWBeta*crit
			p.netW[i] = num.Clamp(p.cfg.NWAlpha*p.netW[i]+(1-p.cfg.NWAlpha)*target, 1, 8)
		}
		bd.Weights = time.Since(t0)
	case ModeInsta:
		// "Data transfer": clone refreshed arc delays into INSTA. Arcs are
		// disjoint, so the transfer runs on the shared scheduler pool.
		t0 = time.Now()
		p.pool.RunTagged("place-xfer", -1, len(p.ref.Arcs), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a := &p.ref.Arcs[i]
				p.eng.SetArcDelay(int32(i), liberty.Rise, a.Delay[liberty.Rise])
				p.eng.SetArcDelay(int32(i), liberty.Fall, a.Delay[liberty.Fall])
			}
		})
		bd.Transfer = time.Since(t0)
		// Gradient computation: forward + backward kernels, then the same
		// momentum smoothing the net-weighting baseline enjoys, so pressure
		// persists on recently-critical arcs (the paper reuses the
		// last-computed gradients between refreshes for the same reason).
		t0 = time.Now()
		p.eng.Run()
		p.eng.Backward()
		p.arcW = p.eng.NetArcGradients()
		p.updateLambda2()
		p.smoothArcWeights()
		bd.Weights = time.Since(t0)
	}
	return bd
}

// updateLambda2 implements Eq. 8: balance the timing gradient norm against
// the default objective's gradient norm.
func (p *Placer) updateLambda2() {
	p.clearGrads()
	p.addWirelengthGrad(nil)
	p.addDensityGrad()
	base := p.gradNorm()
	p.clearGrads()
	p.addArcTimingGradRaw()
	tg := p.gradNorm()
	if tg > 0 {
		p.lambda2 = p.cfg.TimingStrength * base / tg
	}
	p.clearGrads()
}

func (p *Placer) clearGrads() {
	clear(p.gradX)
	clear(p.gradY)
}

func (p *Placer) gradNorm() float64 {
	var s float64
	for _, g := range p.gradX {
		s += g * g
	}
	for _, g := range p.gradY {
		s += g * g
	}
	return math.Sqrt(s)
}

// Step performs one momentum gradient-descent update of the global
// placement (exported so examples and diagnostics can drive the loop
// manually; Run composes Step with timing refreshes and legalization).
func (p *Placer) Step(it int) {
	p.clearGrads()
	switch p.cfg.Mode {
	case ModeNetWeight:
		p.addWirelengthGrad(p.netW)
	default:
		p.addWirelengthGrad(nil)
	}
	if !p.cfg.DensityOff {
		p.addDensityGrad()
	}
	if p.cfg.Mode == ModeInsta && p.arcW != nil {
		p.addArcTimingGrad()
	}

	lr := p.cfg.LR * (1 - 0.5*float64(it)/float64(p.cfg.Iterations))
	p.pool.RunTagged("place-step", -1, len(p.movable), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := p.movable[i]
			gx, gy := p.gradX[c], p.gradY[c]
			p.vx[i] = p.cfg.Momentum*p.vx[i] - lr*gx
			p.vy[i] = p.cfg.Momentum*p.vy[i] - lr*gy
			cell := &p.d.Cells[c]
			cell.X = num.Clamp(cell.X+p.vx[i], 0, p.W)
			cell.Y = num.Clamp(cell.Y+p.vy[i], 0, p.H)
		}
	})
}

// arcPull is one momentum-smoothed arc weight with its pin pair.
type arcPull struct {
	From, To int32
	W        float64
}

// smoothArcWeights folds the latest normalized arc weights into the
// momentum-smoothed pull set and decays stale entries.
func (p *Placer) smoothArcWeights() {
	var gmax float64
	for _, aw := range p.arcW {
		if -aw.Grad > gmax {
			gmax = -aw.Grad
		}
	}
	fresh := make(map[int32]arcPull, len(p.arcW))
	if gmax > 0 {
		scale := p.lambda2 * p.cfg.LambdaRC * gmax
		peak := num.Clamp(scale, 2, p.cfg.NWBeta*4)
		for _, aw := range p.arcW {
			g := -aw.Grad
			if g == 0 {
				continue
			}
			// Compressed dynamic range: hub arcs funnel hundreds of
			// endpoints while a worst-slack path may funnel one.
			fresh[aw.Arc] = arcPull{From: aw.From, To: aw.To, W: peak * math.Pow(g/gmax, 0.05)}
		}
	}
	alpha := p.cfg.NWAlpha
	for arc, old := range p.arcWSm {
		f, ok := fresh[arc]
		if !ok {
			w := alpha * old.W
			if w < 0.05 {
				delete(p.arcWSm, arc)
				continue
			}
			old.W = w
			p.arcWSm[arc] = old
			continue
		}
		f.W = alpha*old.W + (1-alpha)*f.W
		if f.W < fresh[arc].W {
			f.W = fresh[arc].W
		}
		p.arcWSm[arc] = f
		delete(fresh, arc)
	}
	for arc, f := range fresh {
		p.arcWSm[arc] = f
	}
}
