package place

import (
	"math"
	"math/rand"
	"testing"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/rc"
	"insta/internal/refsta"
)

func placeSpec(seed int64) bench.Spec {
	wire := rc.DefaultParams()
	wire.RPerUnit, wire.CPerUnit = 0.3, 0.3
	return bench.Spec{
		Name: "placetest", Seed: seed, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 12, Layers: 4, Width: 12,
		CrossFrac: 0.1, NumPIs: 4, NumPOs: 4,
		Period: 1400, Uncertainty: 10, Die: 60, Wire: &wire,
	}
}

func buildPlacer(t testing.TB, seed int64, mode Mode, iters int) (*Placer, *refsta.Engine) {
	t.Helper()
	b, err := bench.Generate(placeSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var eng *core.Engine
	if mode == ModeInsta {
		tab := circuitops.Extract(ref)
		eng, err = core.NewEngine(tab, core.Options{TopK: 2, Tau: 60, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig(mode)
	cfg.Iterations = iters
	p, err := New(ref, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, ref
}

func TestNewRequiresEngineForInsta(t *testing.T) {
	b, err := bench.Generate(placeSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ref, nil, DefaultConfig(ModeInsta)); err == nil {
		t.Error("INSTA mode without engine accepted")
	}
}

func TestPlainPlacementReducesHPWL(t *testing.T) {
	p, _ := buildPlacer(t, 2, ModePlain, 120)
	before := p.HPWL()
	res := p.Run()
	if res.HPWL >= before {
		t.Errorf("HPWL did not improve: %v -> %v", before, res.HPWL)
	}
	if res.Runtime <= 0 {
		t.Error("runtime not recorded")
	}
}

func TestLegalizeRemovesOverlaps(t *testing.T) {
	p, _ := buildPlacer(t, 3, ModePlain, 40)
	p.Run() // Run legalizes at the end
	if n := p.OverlapCount(); n != 0 {
		t.Errorf("%d overlapping pairs after legalization", n)
	}
	// All cells inside the region on integer rows.
	for _, c := range p.movable {
		cell := &p.d.Cells[c]
		if cell.X < 0 || cell.X+cell.Width > p.W+1e-9 || cell.Y < 0 || cell.Y >= p.H {
			t.Fatalf("cell %d out of region: (%v, %v)", c, cell.X, cell.Y)
		}
		if cell.Y != math.Trunc(cell.Y) {
			t.Fatalf("cell %d not on a row: y=%v", c, cell.Y)
		}
	}
}

func TestHPWLMatchesBruteForce(t *testing.T) {
	p, _ := buildPlacer(t, 4, ModePlain, 0)
	var want float64
	d := p.d
	for ni := range d.Nets {
		net := &d.Nets[ni]
		if len(net.Sinks) == 0 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		consider := func(pin netlist.PinID) {
			x, y := d.PinPos(pin)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
		consider(net.Driver)
		for _, s := range net.Sinks {
			consider(s)
		}
		want += maxX - minX + maxY - minY
	}
	if got := p.HPWL(); math.Abs(got-want) > 1e-6 {
		t.Errorf("HPWL = %v, want %v", got, want)
	}
}

func TestWAGradientPullsTogether(t *testing.T) {
	// On a 2-pin net, the WA gradient must pull the two pins toward each
	// other: positive at the right pin, negative at the left pin.
	p, _ := buildPlacer(t, 5, ModePlain, 0)
	d := p.d
	// Find a 1-sink net between two movable cells.
	for ni := range d.Nets {
		net := &d.Nets[ni]
		if len(net.Sinks) != 1 {
			continue
		}
		dc := d.Pins[net.Driver].Cell
		sc := d.Pins[net.Sinks[0]].Cell
		if dc == netlist.NoCell || sc == netlist.NoCell || dc == sc {
			continue
		}
		d.Cells[dc].X, d.Cells[dc].Y = 10, 10
		d.Cells[sc].X, d.Cells[sc].Y = 40, 10
		clear(p.pinGX)
		p.waNetGrad(net, 1, p.cfg.Gamma, true)
		if !(p.pinGX[net.Sinks[0]] > 0 && p.pinGX[net.Driver] < 0) {
			t.Fatalf("gradient wrong direction: driver %v sink %v",
				p.pinGX[net.Driver], p.pinGX[net.Sinks[0]])
		}
		return
	}
	t.Skip("no suitable 2-pin net found")
}

func TestNetWeightModeRespondsToSlack(t *testing.T) {
	p, _ := buildPlacer(t, 6, ModeNetWeight, 0)
	p.RefreshTiming()
	// After a refresh, weights must be >= 1 everywhere and > 1 somewhere if
	// there are violations.
	above := 0
	for _, w := range p.netW {
		if w < 1-1e-9 {
			t.Fatalf("net weight %v below 1", w)
		}
		if w > 1+1e-6 {
			above++
		}
	}
	if p.ref.NumViolations() > 0 && above == 0 {
		t.Error("violations present but no net weight raised")
	}
}

func TestInstaModeProducesBreakdown(t *testing.T) {
	p, _ := buildPlacer(t, 7, ModeInsta, 31)
	res := p.Run()
	bd := res.LastBreakdown
	if bd.Timer <= 0 || bd.Weights <= 0 {
		t.Errorf("breakdown missing phases: %+v", bd)
	}
	if bd.Transfer <= 0 {
		t.Errorf("INSTA mode should record transfer time: %+v", bd)
	}
	if bd.Total() < bd.Timer {
		t.Error("total smaller than a component")
	}
}

func TestInstaPlaceCompetitiveWithNetWeighting(t *testing.T) {
	// The Table III comparison needs a design large enough that placement
	// QoR is not dominated by a handful of nets; the smallest superblue
	// preset is the smallest stable instance. Skipped under -short.
	if testing.Short() {
		t.Skip("placement QoR comparison skipped in -short mode")
	}
	spec, err := bench.SuperblueSpec("superblue18")
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode Mode) Result {
		b, err := bench.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var eng *core.Engine
		if mode == ModeInsta {
			eng, err = core.NewEngine(circuitops.Extract(ref), core.Options{TopK: 2, Tau: 60, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
		}
		p, err := New(ref, eng, DefaultConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		return p.Run()
	}
	resNW := run(ModeNetWeight)
	resInsta := run(ModeInsta)
	t.Logf("nw: HPWL=%.0f TNS=%.1f | insta: HPWL=%.0f TNS=%.1f",
		resNW.HPWL, resNW.TNS, resInsta.HPWL, resInsta.TNS)
	// The paper's claim directions, with slack for seed noise.
	if resInsta.TNS < 1.25*resNW.TNS {
		t.Errorf("INSTA-Place TNS %v far worse than net weighting %v", resInsta.TNS, resNW.TNS)
	}
	if resInsta.HPWL > 1.15*resNW.HPWL {
		t.Errorf("INSTA-Place HPWL %v far worse than net weighting %v", resInsta.HPWL, resNW.HPWL)
	}
}

func TestModeString(t *testing.T) {
	if ModePlain.String() != "DP" || ModeNetWeight.String() != "DP4.0-NW" || ModeInsta.String() != "INSTA-Place" {
		t.Error("Mode.String misbehaves")
	}
}

func TestLegalizePropertyRandom(t *testing.T) {
	// Property: for random placements, legalization always produces
	// overlap-free rows inside the region.
	p, _ := buildPlacer(t, 9, ModePlain, 0)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		for _, c := range p.movable {
			p.d.Cells[c].X = rng.Float64() * p.W
			p.d.Cells[c].Y = rng.Float64() * p.H
		}
		p.Legalize()
		if n := p.OverlapCount(); n != 0 {
			t.Fatalf("trial %d: %d overlaps", trial, n)
		}
		for _, c := range p.movable {
			cell := &p.d.Cells[c]
			if cell.X < -1e-9 || cell.X+cell.Width > p.W+1e-9 {
				t.Fatalf("trial %d: cell %d x out of region", trial, c)
			}
		}
	}
}

func TestDensityGradPushesFromOverfullBin(t *testing.T) {
	p, _ := buildPlacer(t, 10, ModePlain, 0)
	// Pile every cell into the bottom-left corner bin.
	for _, c := range p.movable {
		p.d.Cells[c].X = 1
		p.d.Cells[c].Y = 1
	}
	p.clearGrads()
	p.addDensityGrad()
	// The gradient must push (positive descent direction means moving -grad,
	// so grad should be negative toward larger coordinates... verify the
	// force is nonzero and points away from the wall for at least one cell).
	pushed := 0
	for _, c := range p.movable {
		if p.gradX[c] < 0 || p.gradY[c] < 0 {
			pushed++
		}
	}
	if pushed == 0 {
		t.Error("no cell pushed out of the overfull corner bin")
	}
}
