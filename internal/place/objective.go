package place

import (
	"math"

	"insta/internal/netlist"
)

// addWirelengthGrad accumulates the gradient of the weighted-average (WA)
// smooth wirelength over all nets into gradX/gradY. weights scales each
// net's contribution (nil means uniform), which is how DP4.0-style net
// weighting enters the objective.
//
// The kernel is two-phase over the scheduler pool, each phase racing on
// nothing and summing in a fixed order: nets scatter per-pin gradients into
// pinGX/pinGY (a pin belongs to exactly one net, so writes are disjoint),
// then movable cells gather their pins' contributions in pin-list order. The
// result is bit-identical for any worker count.
func (p *Placer) addWirelengthGrad(weights []float64) {
	gamma := p.cfg.Gamma
	clear(p.pinGX)
	clear(p.pinGY)
	p.pool.RunTagged("place-wl", -1, len(p.d.Nets), func(lo, hi int) {
		for ni := lo; ni < hi; ni++ {
			net := &p.d.Nets[ni]
			if len(net.Sinks) == 0 {
				continue
			}
			w := 1.0
			if weights != nil {
				w = weights[ni]
			}
			p.waNetGrad(net, w, gamma, true)
			p.waNetGrad(net, w, gamma, false)
		}
	})
	p.pool.RunTagged("place-wl", -1, len(p.movable), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := p.movable[i]
			var gx, gy float64
			for _, pin := range p.d.Cells[c].Pins {
				gx += p.pinGX[pin]
				gy += p.pinGY[pin]
			}
			p.gradX[c] += gx
			p.gradY[c] += gy
		}
	})
}

// waNetGrad computes the WA wirelength gradient of one net along one axis.
// WA(net) = (Σ x e^{x/γ})/(Σ e^{x/γ}) - (Σ x e^{-x/γ})/(Σ e^{-x/γ});
// its gradient w.r.t. each pin is computed with max-shifted exponentials for
// stability, and scattered into the per-pin scratch (the gather phase folds
// it onto movable cells; ports and fixed cells never gather).
func (p *Placer) waNetGrad(net *netlist.Net, w, gamma float64, xAxis bool) {
	pins := p.netPins(net)
	n := len(pins)
	if n < 2 {
		return
	}
	coord := func(pin netlist.PinID) float64 {
		x, y := p.d.PinPos(pin)
		if xAxis {
			return x
		}
		return y
	}
	maxC, minC := math.Inf(-1), math.Inf(1)
	for _, pin := range pins {
		c := coord(pin)
		if c > maxC {
			maxC = c
		}
		if c < minC {
			minC = c
		}
	}
	var sPlus, sxPlus, sMinus, sxMinus float64
	ePlus := make([]float64, n)
	eMinus := make([]float64, n)
	for i, pin := range pins {
		c := coord(pin)
		ep := math.Exp((c - maxC) / gamma)
		em := math.Exp((minC - c) / gamma)
		ePlus[i], eMinus[i] = ep, em
		sPlus += ep
		sxPlus += c * ep
		sMinus += em
		sxMinus += c * em
	}
	for i, pin := range pins {
		c := coord(pin)
		// d WA⁺ / dx_i and d WA⁻ / dx_i.
		dPlus := ePlus[i] * (1 + (c-sxPlus/sPlus)/gamma) / sPlus
		dMinus := eMinus[i] * (1 - (c-sxMinus/sMinus)/gamma) / sMinus
		g := w * (dPlus - dMinus)
		if xAxis {
			p.pinGX[pin] += g
		} else {
			p.pinGY[pin] += g
		}
	}
}

// netPins lists a net's driver and sink pins.
func (p *Placer) netPins(net *netlist.Net) []netlist.PinID {
	out := make([]netlist.PinID, 0, 1+len(net.Sinks))
	out = append(out, net.Driver)
	out = append(out, net.Sinks...)
	return out
}

// addDensityGrad accumulates a bin-overflow spreading force: cells deposit
// their area bilinearly into a BinsX×BinsY grid; bins above the target
// density push their cells toward less-filled neighbours along the density
// gradient. This is a lightweight stand-in for ePlace's electrostatic
// system — adequate because all three compared flows share it (the Table III
// contrast isolates the timing term).
func (p *Placer) addDensityGrad() {
	nx, ny := p.cfg.BinsX, p.cfg.BinsY
	bw := p.W / float64(nx)
	bh := p.H / float64(ny)
	binArea := bw * bh
	density := make([]float64, nx*ny)
	for _, c := range p.movable {
		cell := &p.d.Cells[c]
		bx := int(cell.X / bw)
		by := int(cell.Y / bh)
		if bx >= nx {
			bx = nx - 1
		}
		if by >= ny {
			by = ny - 1
		}
		density[by*nx+bx] += cell.Width / binArea
	}
	overflow := func(bx, by int) float64 {
		if bx < 0 || bx >= nx || by < 0 || by >= ny {
			return math.Inf(1) // walls repel
		}
		ov := density[by*nx+bx] - p.cfg.TargetDensity
		if ov < 0 {
			return 0
		}
		return ov
	}
	const k = 18.0 // density force scale relative to wirelength gradient (~1)
	for _, c := range p.movable {
		cell := &p.d.Cells[c]
		bx := int(cell.X / bw)
		by := int(cell.Y / bh)
		if bx >= nx {
			bx = nx - 1
		}
		if by >= ny {
			by = ny - 1
		}
		here := overflow(bx, by)
		if here == 0 {
			continue
		}
		// Finite-difference density gradient; move downhill.
		gx := diffFinite(overflow(bx+1, by), overflow(bx-1, by), here)
		gy := diffFinite(overflow(bx, by+1), overflow(bx, by-1), here)
		p.gradX[c] += k * here * gx
		p.gradY[c] += k * here * gy
	}
}

// diffFinite returns the central-difference slope, treating walls (+Inf) as
// strongly repulsive.
func diffFinite(plus, minus, here float64) float64 {
	if math.IsInf(plus, 1) && math.IsInf(minus, 1) {
		return 0
	}
	if math.IsInf(plus, 1) {
		return here - minus + 1
	}
	if math.IsInf(minus, 1) {
		return -(here - plus + 1)
	}
	return (plus - minus) / 2
}

// addArcTimingGrad accumulates INSTA-Place's Eq. 7 objective as arc-level
// weighted pulls: each critical arc (f_k, t_k) contributes the gradient of a
// weighted two-pin Manhattan span, with its weight proportional to the arc's
// normalized timing gradient. Force magnitudes therefore stay on the same
// scale as the wirelength gradient (like the net-weighting baseline), while
// the *targeting* is per-arc — exactly the contrast of the paper's Fig. 5:
// only timing-critical sinks get pulled, and each in proportion to its own
// leverage on TNS. The overall level is set by the Eq. 8 balance factor
// clamped to the net-weighting regime so neither flow enjoys a raw-force
// advantage.
func (p *Placer) addArcTimingGrad() {
	for _, ap := range p.arcWSm {
		w := ap.W
		from := netlist.PinID(ap.From)
		to := netlist.PinID(ap.To)
		fc := p.d.Pins[from].Cell
		tc := p.d.Pins[to].Cell
		fx, fy := p.d.PinPos(from)
		tx, ty := p.d.PinPos(to)
		// Smooth Manhattan pull, saturating at the wirelength smoothing
		// scale so close pairs stop oscillating.
		sx := math.Tanh((fx - tx) / p.cfg.Gamma)
		sy := math.Tanh((fy - ty) / p.cfg.Gamma)
		if fc != netlist.NoCell && !p.d.Cells[fc].Fixed {
			p.gradX[fc] += w * sx
			p.gradY[fc] += w * sy
		}
		if tc != netlist.NoCell && !p.d.Cells[tc].Fixed {
			p.gradX[tc] -= w * sx
			p.gradY[tc] -= w * sy
		}
	}
}

// addArcTimingGradRaw accumulates the un-normalized Eq. 7 gradient
// (λ_RC·g_k pulls) used only to measure the timing gradient norm for the
// Eq. 8 balance factor.
func (p *Placer) addArcTimingGradRaw() {
	for _, aw := range p.arcW {
		g := -aw.Grad
		if g == 0 {
			continue
		}
		w := p.cfg.LambdaRC * g
		from := netlist.PinID(aw.From)
		to := netlist.PinID(aw.To)
		fc := p.d.Pins[from].Cell
		tc := p.d.Pins[to].Cell
		fx, fy := p.d.PinPos(from)
		tx, ty := p.d.PinPos(to)
		sx := math.Tanh((fx - tx) / p.cfg.Gamma)
		sy := math.Tanh((fy - ty) / p.cfg.Gamma)
		if fc != netlist.NoCell && !p.d.Cells[fc].Fixed {
			p.gradX[fc] += w * sx
			p.gradY[fc] += w * sy
		}
		if tc != netlist.NoCell && !p.d.Cells[tc].Fixed {
			p.gradX[tc] -= w * sx
			p.gradY[tc] -= w * sy
		}
	}
}
