// Package corners adds multi-corner analysis on top of the single-corner
// engines: each process corner scales the library's delay/sigma surfaces and
// the wire RC, gets its own reference engine and INSTA instance, and the
// merged view takes the worst slack per endpoint across corners — the
// standard multi-corner signoff setup the paper's single-corner experiments
// sit inside.
package corners

import (
	"fmt"
	"math"

	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/rc"
	"insta/internal/refsta"
	"insta/internal/sdc"
)

// Corner is one PVT corner expressed as scale factors over the nominal
// characterization.
type Corner struct {
	Name       string
	DelayScale float64 // cell delay and output-slew scaling
	SigmaScale float64 // POCV sigma scaling
	RCScale    float64 // interconnect R and C scaling
}

// DefaultCorners returns the usual slow/typical/fast trio.
func DefaultCorners() []Corner {
	return []Corner{
		{Name: "ss", DelayScale: 1.18, SigmaScale: 1.25, RCScale: 1.10},
		{Name: "tt", DelayScale: 1.00, SigmaScale: 1.00, RCScale: 1.00},
		{Name: "ff", DelayScale: 0.86, SigmaScale: 0.90, RCScale: 0.92},
	}
}

// ScaleLibrary returns a deep copy of lib with every delay, transition and
// sigma table scaled for the corner. Pin caps, areas and footprints are
// unchanged (loading does not move with PVT in this model).
func ScaleLibrary(lib *liberty.Library, c Corner) *liberty.Library {
	cells := make([]*liberty.Cell, len(lib.Cells))
	for i, src := range lib.Cells {
		cp := *src
		cp.PinCap = make(map[string]float64, len(src.PinCap))
		for k, v := range src.PinCap {
			cp.PinCap[k] = v
		}
		cp.Inputs = append([]string(nil), src.Inputs...)
		cp.Outputs = append([]string(nil), src.Outputs...)
		cp.Setup = [2]float64{src.Setup[0] * c.DelayScale, src.Setup[1] * c.DelayScale}
		cp.Hold = [2]float64{src.Hold[0] * c.DelayScale, src.Hold[1] * c.DelayScale}
		cp.Arcs = make([]liberty.Arc, len(src.Arcs))
		for ai := range src.Arcs {
			sa := &src.Arcs[ai]
			da := &cp.Arcs[ai]
			da.From, da.To, da.Sense = sa.From, sa.To, sa.Sense
			for rf := 0; rf < 2; rf++ {
				da.Delay[rf] = scaleTable(&sa.Delay[rf], c.DelayScale)
				da.OutSlew[rf] = scaleTable(&sa.OutSlew[rf], c.DelayScale)
				da.Sigma[rf] = scaleTable(&sa.Sigma[rf], c.SigmaScale)
			}
		}
		cells[i] = &cp
	}
	return liberty.Rebuild(lib.Name+"@"+c.Name, cells)
}

func scaleTable(t *liberty.Table, f float64) liberty.Table {
	out := liberty.Table{
		Slew: append([]float64(nil), t.Slew...),
		Load: append([]float64(nil), t.Load...),
		Val:  make([][]float64, len(t.Val)),
	}
	for i, row := range t.Val {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v * f
		}
		out.Val[i] = r
	}
	return out
}

// ScaleParasitics returns a copy of par with branch R and C scaled.
func ScaleParasitics(par *rc.Parasitics, f float64) *rc.Parasitics {
	out := &rc.Parasitics{Params: par.Params, Nets: make([]rc.Net, len(par.Nets))}
	out.Params.RPerUnit *= f
	out.Params.CPerUnit *= f
	for i := range par.Nets {
		if len(par.Nets[i].Branch) == 0 {
			continue
		}
		bs := make([]rc.Branch, len(par.Nets[i].Branch))
		for j, b := range par.Nets[i].Branch {
			bs[j] = rc.Branch{Len: b.Len, R: b.R * f, C: b.C * f}
		}
		out.Nets[i].Branch = bs
	}
	return out
}

// View is one corner's engine pair.
type View struct {
	Corner Corner
	Ref    *refsta.Engine
	Insta  *core.Engine
}

// Analysis holds the per-corner views over one design.
type Analysis struct {
	Views []View
}

// New builds a reference engine and an INSTA instance per corner. The views
// share the netlist; libraries and parasitics are scaled copies.
func New(d *netlist.Design, lib *liberty.Library, con *sdc.Constraints, par *rc.Parasitics, crns []Corner, opt core.Options) (*Analysis, error) {
	if len(crns) == 0 {
		return nil, fmt.Errorf("corners: no corners given")
	}
	a := &Analysis{}
	for _, c := range crns {
		scaledLib := ScaleLibrary(lib, c)
		scaledPar := ScaleParasitics(par, c.RCScale)
		ref, err := refsta.New(d, scaledLib, con, scaledPar, refsta.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("corners: %s: %w", c.Name, err)
		}
		e, err := core.NewEngine(circuitops.Extract(ref), opt)
		if err != nil {
			return nil, fmt.Errorf("corners: %s: %w", c.Name, err)
		}
		e.Run()
		a.Views = append(a.Views, View{Corner: c, Ref: ref, Insta: e})
	}
	return a, nil
}

// MergedSlacks returns the per-endpoint worst slack across corners from the
// INSTA views (endpoint order is shared: same netlist, same extraction
// order).
func (a *Analysis) MergedSlacks() []float64 {
	n := len(a.Views[0].Insta.Slacks())
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Inf(1)
	}
	for _, v := range a.Views {
		for i, s := range v.Insta.Slacks() {
			if s < out[i] {
				out[i] = s
			}
		}
	}
	return out
}

// WorstCornerPerEndpoint reports which corner sets each endpoint's merged
// slack.
func (a *Analysis) WorstCornerPerEndpoint() []string {
	n := len(a.Views[0].Insta.Slacks())
	out := make([]string, n)
	worst := make([]float64, n)
	for i := range worst {
		worst[i] = math.Inf(1)
	}
	for _, v := range a.Views {
		for i, s := range v.Insta.Slacks() {
			if s < worst[i] {
				worst[i] = s
				out[i] = v.Corner.Name
			}
		}
	}
	return out
}

// WNS returns the merged worst negative slack.
func (a *Analysis) WNS() float64 {
	w := 0.0
	for _, s := range a.MergedSlacks() {
		if s < w {
			w = s
		}
	}
	return w
}

// TNS returns the merged total negative slack (per-endpoint worst corner).
func (a *Analysis) TNS() float64 {
	t := 0.0
	for _, s := range a.MergedSlacks() {
		if s < 0 {
			t += s
		}
	}
	return t
}
