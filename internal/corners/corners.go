// Package corners provides multi-corner analysis as a thin wrapper over the
// scenario-batched engine in internal/batch: each PVT corner is expressed as
// derate factors over the nominal extraction (the industrial
// set_timing_derate form), and one batched propagation carries every corner
// through the shared graph in a single traversal. One nominal reference
// engine is kept for reporting and validation; there are no per-corner
// engines to build or leak — the old per-corner construction rebuilt the
// reference timer, extraction, and INSTA instance S times over and never
// released the worker pools.
//
// ScaleLibrary and ScaleParasitics survive as characterization utilities:
// they produce fully re-characterized corner libraries/parasitics for
// reference-grade validation, while the analysis path derates extracted
// annotations directly (see batch.ScaleTables for the exact arithmetic).
package corners

import (
	"fmt"

	"insta/internal/batch"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/rc"
	"insta/internal/refsta"
	"insta/internal/sdc"
)

// Corner is one PVT corner expressed as scale factors over the nominal
// characterization.
type Corner struct {
	Name       string
	DelayScale float64 // cell delay and output-slew scaling
	SigmaScale float64 // POCV sigma scaling
	RCScale    float64 // interconnect R and C scaling
}

// DefaultCorners returns the usual slow/typical/fast trio.
func DefaultCorners() []Corner {
	return []Corner{
		{Name: "ss", DelayScale: 1.18, SigmaScale: 1.25, RCScale: 1.10},
		{Name: "tt", DelayScale: 1.00, SigmaScale: 1.00, RCScale: 1.00},
		{Name: "ff", DelayScale: 0.86, SigmaScale: 0.90, RCScale: 0.92},
	}
}

// Scenario converts the corner to the batched engine's scenario form.
func (c Corner) Scenario() batch.Scenario {
	return batch.Scenario{
		Name:       c.Name,
		DelayScale: c.DelayScale,
		SigmaScale: c.SigmaScale,
		RCScale:    c.RCScale,
	}
}

// Scenarios converts a corner list to the batched engine's scenario form.
func Scenarios(crns []Corner) []batch.Scenario {
	out := make([]batch.Scenario, len(crns))
	for i, c := range crns {
		out[i] = c.Scenario()
	}
	return out
}

// FromScenarios converts parsed scenarios back to corners (for callers that
// take a -corners flag via batch.ParseScenarios but report through this
// package).
func FromScenarios(scns []batch.Scenario) []Corner {
	out := make([]Corner, len(scns))
	for i, s := range scns {
		out[i] = Corner{Name: s.Name, DelayScale: s.DelayScale, SigmaScale: s.SigmaScale, RCScale: s.RCScale}
	}
	return out
}

// ScaleLibrary returns a deep copy of lib with every delay, transition and
// sigma table scaled for the corner. Pin caps, areas and footprints are
// unchanged (loading does not move with PVT in this model).
func ScaleLibrary(lib *liberty.Library, c Corner) *liberty.Library {
	cells := make([]*liberty.Cell, len(lib.Cells))
	for i, src := range lib.Cells {
		cp := *src
		cp.PinCap = make(map[string]float64, len(src.PinCap))
		for k, v := range src.PinCap {
			cp.PinCap[k] = v
		}
		cp.Inputs = append([]string(nil), src.Inputs...)
		cp.Outputs = append([]string(nil), src.Outputs...)
		cp.Setup = [2]float64{src.Setup[0] * c.DelayScale, src.Setup[1] * c.DelayScale}
		cp.Hold = [2]float64{src.Hold[0] * c.DelayScale, src.Hold[1] * c.DelayScale}
		cp.Arcs = make([]liberty.Arc, len(src.Arcs))
		for ai := range src.Arcs {
			sa := &src.Arcs[ai]
			da := &cp.Arcs[ai]
			da.From, da.To, da.Sense = sa.From, sa.To, sa.Sense
			for rf := 0; rf < 2; rf++ {
				da.Delay[rf] = scaleTable(&sa.Delay[rf], c.DelayScale)
				da.OutSlew[rf] = scaleTable(&sa.OutSlew[rf], c.DelayScale)
				da.Sigma[rf] = scaleTable(&sa.Sigma[rf], c.SigmaScale)
			}
		}
		cells[i] = &cp
	}
	return liberty.Rebuild(lib.Name+"@"+c.Name, cells)
}

func scaleTable(t *liberty.Table, f float64) liberty.Table {
	out := liberty.Table{
		Slew: append([]float64(nil), t.Slew...),
		Load: append([]float64(nil), t.Load...),
		Val:  make([][]float64, len(t.Val)),
	}
	for i, row := range t.Val {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = v * f
		}
		out.Val[i] = r
	}
	return out
}

// ScaleParasitics returns a copy of par with branch R and C scaled.
func ScaleParasitics(par *rc.Parasitics, f float64) *rc.Parasitics {
	out := &rc.Parasitics{Params: par.Params, Nets: make([]rc.Net, len(par.Nets))}
	out.Params.RPerUnit *= f
	out.Params.CPerUnit *= f
	for i := range par.Nets {
		if len(par.Nets[i].Branch) == 0 {
			continue
		}
		bs := make([]rc.Branch, len(par.Nets[i].Branch))
		for j, b := range par.Nets[i].Branch {
			bs[j] = rc.Branch{Len: b.Len, R: b.R * f, C: b.C * f}
		}
		out.Nets[i].Branch = bs
	}
	return out
}

// Analysis is the multi-corner view over one design: a nominal reference
// engine plus one scenario-batched INSTA engine holding every corner.
type Analysis struct {
	Corners []Corner
	Ref     *refsta.Engine // nominal (tt-unit) reference timer
	Tables  *circuitops.Tables
	Eng     *batch.Engine // batched engine, all corners in one traversal
}

// New builds the nominal reference once, extracts its tables, and stands up
// one batched engine spanning every corner. The result is fully propagated
// and slack-evaluated. Callers own the returned Analysis and must Close it
// to release the engine's worker pool.
func New(d *netlist.Design, lib *liberty.Library, con *sdc.Constraints, par *rc.Parasitics, crns []Corner, opt core.Options) (*Analysis, error) {
	if len(crns) == 0 {
		return nil, fmt.Errorf("corners: no corners given")
	}
	ref, err := refsta.New(d, lib, con, par, refsta.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("corners: %w", err)
	}
	tab := circuitops.Extract(ref)
	eng, err := batch.New(tab, Scenarios(crns), opt)
	if err != nil {
		return nil, fmt.Errorf("corners: %w", err)
	}
	eng.Run()
	return &Analysis{Corners: append([]Corner(nil), crns...), Ref: ref, Tables: tab, Eng: eng}, nil
}

// FromState stands up a multi-corner analysis over an already compiled
// state (internal/snap warm start): no reference engine is built, so Ref and
// Tables are nil and reference-grade reporting is unavailable, but the
// batched engine is fully propagated and slack-evaluated like New's.
func FromState(st *core.State, crns []Corner, opt core.Options) (*Analysis, error) {
	if len(crns) == 0 {
		return nil, fmt.Errorf("corners: no corners given")
	}
	eng, err := batch.NewFromState(st, Scenarios(crns), opt)
	if err != nil {
		return nil, fmt.Errorf("corners: %w", err)
	}
	eng.Run()
	return &Analysis{Corners: append([]Corner(nil), crns...), Eng: eng}, nil
}

// Close releases the batched engine's worker pool. Safe to call once; the
// Analysis must not be used afterwards.
func (a *Analysis) Close() {
	if a.Eng != nil {
		a.Eng.Close()
		a.Eng = nil
	}
}

// CornerIndex resolves a corner name to its scenario index, -1 if absent.
func (a *Analysis) CornerIndex(name string) int { return a.Eng.ScenarioIndex(name) }

// Slacks returns a copy of the named corner's per-endpoint slacks.
func (a *Analysis) Slacks(name string) ([]float64, error) {
	s := a.Eng.ScenarioIndex(name)
	if s < 0 {
		return nil, fmt.Errorf("corners: unknown corner %q", name)
	}
	return a.Eng.Slacks(s), nil
}

// MergedSlacks returns the per-endpoint worst slack across corners.
func (a *Analysis) MergedSlacks() []float64 {
	return a.Eng.Merged().Slacks
}

// WorstCornerPerEndpoint reports which corner sets each endpoint's merged
// slack ("" for untimed endpoints).
func (a *Analysis) WorstCornerPerEndpoint() []string {
	v := a.Eng.Merged()
	out := make([]string, len(v.WorstOf))
	scns := a.Eng.Scenarios()
	for i := range v.WorstOf {
		out[i] = v.WorstName(scns, i)
	}
	return out
}

// WNS returns the merged worst negative slack.
func (a *Analysis) WNS() float64 { return a.Eng.Merged().WNS }

// TNS returns the merged total negative slack (per-endpoint worst corner).
func (a *Analysis) TNS() float64 { return a.Eng.Merged().TNS }
