package corners

import (
	"math"
	"testing"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/liberty"
)

func genDesign(t testing.TB) *bench.Design {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "cornertest", Seed: 9, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 8, Layers: 4, Width: 8,
		CrossFrac: 0.1, NumPIs: 3, NumPOs: 3,
		Period: 1, Uncertainty: 10, Die: 80, VioFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func buildAnalysis(t testing.TB) *Analysis {
	t.Helper()
	b := genDesign(t)
	a, err := New(b.D, b.Lib, b.Con, b.Par, DefaultCorners(), core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestScaleLibraryScalesEverything(t *testing.T) {
	lib := liberty.NewSynthetic(liberty.TechN3())
	c := Corner{Name: "ss", DelayScale: 1.2, SigmaScale: 1.5, RCScale: 1}
	scaled := ScaleLibrary(lib, c)
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	id, _ := lib.CellByName("INV_X1")
	sid, ok := scaled.CellByName("INV_X1")
	if !ok || sid != id {
		t.Fatal("cell ids not stable across scaling")
	}
	orig := lib.Cell(id).FindArc("A", "Y")
	got := scaled.Cell(sid).FindArc("A", "Y")
	d0 := orig.Delay[0].Lookup(10, 4)
	d1 := got.Delay[0].Lookup(10, 4)
	if math.Abs(d1-1.2*d0) > 1e-9 {
		t.Errorf("delay scale: %v, want %v", d1, 1.2*d0)
	}
	s0 := orig.Sigma[0].Lookup(10, 4)
	s1 := got.Sigma[0].Lookup(10, 4)
	if math.Abs(s1-1.5*s0) > 1e-9 {
		t.Errorf("sigma scale: %v, want %v", s1, 1.5*s0)
	}
	// Original untouched.
	if orig.Delay[0].Lookup(10, 4) != d0 {
		t.Error("scaling mutated the source library")
	}
}

func TestSlowCornerIsWorse(t *testing.T) {
	a := buildAnalysis(t)
	var ss, tt, ff *View
	for i := range a.Views {
		switch a.Views[i].Corner.Name {
		case "ss":
			ss = &a.Views[i]
		case "tt":
			tt = &a.Views[i]
		case "ff":
			ff = &a.Views[i]
		}
	}
	if ss == nil || tt == nil || ff == nil {
		t.Fatal("missing corner views")
	}
	// Every timed endpoint: ss slack <= tt slack <= ff slack.
	sSS, sTT, sFF := ss.Insta.Slacks(), tt.Insta.Slacks(), ff.Insta.Slacks()
	for i := range sTT {
		if math.IsInf(sTT[i], 0) {
			continue
		}
		if sSS[i] > sTT[i]+1e-9 || sTT[i] > sFF[i]+1e-9 {
			t.Fatalf("ep %d: corner ordering broken ss=%v tt=%v ff=%v", i, sSS[i], sTT[i], sFF[i])
		}
	}
	if ss.Ref.TNS() > tt.Ref.TNS() {
		t.Errorf("reference ss TNS %v better than tt %v", ss.Ref.TNS(), tt.Ref.TNS())
	}
}

func TestMergedIsWorstPerEndpoint(t *testing.T) {
	a := buildAnalysis(t)
	merged := a.MergedSlacks()
	worstOf := a.WorstCornerPerEndpoint()
	for i := range merged {
		min := math.Inf(1)
		for _, v := range a.Views {
			if s := v.Insta.Slacks()[i]; s < min {
				min = s
			}
		}
		if merged[i] != min {
			t.Fatalf("ep %d merged %v != min %v", i, merged[i], min)
		}
		if !math.IsInf(merged[i], 1) && worstOf[i] == "" {
			t.Fatalf("ep %d has no worst corner label", i)
		}
	}
	// Merged metrics are at least as bad as any single corner's.
	for _, v := range a.Views {
		if a.TNS() > v.Insta.TNS() {
			t.Errorf("merged TNS %v better than corner %s TNS %v", a.TNS(), v.Corner.Name, v.Insta.TNS())
		}
		if a.WNS() > v.Insta.WNS() {
			t.Errorf("merged WNS %v better than corner %s WNS %v", a.WNS(), v.Corner.Name, v.Insta.WNS())
		}
	}
}

func TestPerCornerInstaMatchesReference(t *testing.T) {
	b := genDesign(t)
	a, err := New(b.D, b.Lib, b.Con, b.Par, DefaultCorners(), core.Options{TopK: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Views {
		r, ms, _, _, err := exp.Correlate(v.Ref.EndpointSlacks(), v.Insta.Slacks())
		if err != nil {
			t.Fatal(err)
		}
		if r < 0.999999 || ms.Worst > 1e-6 {
			t.Errorf("corner %s: corr %v worst %v", v.Corner.Name, r, ms.Worst)
		}
	}
}

func TestNewRejectsEmptyCorners(t *testing.T) {
	b := genDesign(t)
	if _, err := New(b.D, b.Lib, b.Con, b.Par, nil, core.Options{TopK: 2}); err == nil {
		t.Error("empty corner list accepted")
	}
}
