package corners

import (
	"math"
	"testing"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/exp"
	"insta/internal/liberty"
)

func genDesign(t testing.TB) *bench.Design {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "cornertest", Seed: 9, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 8, Layers: 4, Width: 8,
		CrossFrac: 0.1, NumPIs: 3, NumPOs: 3,
		Period: 1, Uncertainty: 10, Die: 80, VioFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func buildAnalysis(t testing.TB) *Analysis {
	t.Helper()
	b := genDesign(t)
	a, err := New(b.D, b.Lib, b.Con, b.Par, DefaultCorners(), core.Options{TopK: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func TestScaleLibraryScalesEverything(t *testing.T) {
	lib := liberty.NewSynthetic(liberty.TechN3())
	c := Corner{Name: "ss", DelayScale: 1.2, SigmaScale: 1.5, RCScale: 1}
	scaled := ScaleLibrary(lib, c)
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	id, _ := lib.CellByName("INV_X1")
	sid, ok := scaled.CellByName("INV_X1")
	if !ok || sid != id {
		t.Fatal("cell ids not stable across scaling")
	}
	orig := lib.Cell(id).FindArc("A", "Y")
	got := scaled.Cell(sid).FindArc("A", "Y")
	d0 := orig.Delay[0].Lookup(10, 4)
	d1 := got.Delay[0].Lookup(10, 4)
	if math.Abs(d1-1.2*d0) > 1e-9 {
		t.Errorf("delay scale: %v, want %v", d1, 1.2*d0)
	}
	s0 := orig.Sigma[0].Lookup(10, 4)
	s1 := got.Sigma[0].Lookup(10, 4)
	if math.Abs(s1-1.5*s0) > 1e-9 {
		t.Errorf("sigma scale: %v, want %v", s1, 1.5*s0)
	}
	// Original untouched.
	if orig.Delay[0].Lookup(10, 4) != d0 {
		t.Error("scaling mutated the source library")
	}
}

func TestSlowCornerIsWorse(t *testing.T) {
	a := buildAnalysis(t)
	ss, tt, ff := a.CornerIndex("ss"), a.CornerIndex("tt"), a.CornerIndex("ff")
	if ss < 0 || tt < 0 || ff < 0 {
		t.Fatal("missing corner views")
	}
	// Every timed endpoint: ss slack <= tt slack <= ff slack.
	sSS, sTT, sFF := a.Eng.Slacks(ss), a.Eng.Slacks(tt), a.Eng.Slacks(ff)
	for i := range sTT {
		if math.IsInf(sTT[i], 0) {
			continue
		}
		if sSS[i] > sTT[i]+1e-9 || sTT[i] > sFF[i]+1e-9 {
			t.Fatalf("ep %d: corner ordering broken ss=%v tt=%v ff=%v", i, sSS[i], sTT[i], sFF[i])
		}
	}
}

func TestMergedIsWorstPerEndpoint(t *testing.T) {
	a := buildAnalysis(t)
	merged := a.MergedSlacks()
	worstOf := a.WorstCornerPerEndpoint()
	for i := range merged {
		min := math.Inf(1)
		for s := range a.Corners {
			if sl := a.Eng.Slacks(s)[i]; sl < min {
				min = sl
			}
		}
		if merged[i] != min {
			t.Fatalf("ep %d merged %v != min %v", i, merged[i], min)
		}
		if !math.IsInf(merged[i], 1) && worstOf[i] == "" {
			t.Fatalf("ep %d has no worst corner label", i)
		}
	}
	// Merged metrics are at least as bad as any single corner's.
	for s, c := range a.Corners {
		if a.TNS() > a.Eng.TNS(s) {
			t.Errorf("merged TNS %v better than corner %s TNS %v", a.TNS(), c.Name, a.Eng.TNS(s))
		}
		if a.WNS() > a.Eng.WNS(s) {
			t.Errorf("merged WNS %v better than corner %s WNS %v", a.WNS(), c.Name, a.Eng.WNS(s))
		}
	}
}

// TestPerCornerMatchesDeratedEngine pins the analysis path's contract: each
// corner of the batched Analysis is bit-identical to a standalone
// single-corner engine over the derated tables.
func TestPerCornerMatchesDeratedEngine(t *testing.T) {
	a := buildAnalysis(t)
	for s, c := range a.Corners {
		se, err := core.NewEngine(batch.ScaleTables(a.Tables, c.Scenario()), core.Options{TopK: 8, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := se.Run()
		got := a.Eng.Slacks(s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("corner %s ep %d: %v != %v", c.Name, i, got[i], want[i])
			}
		}
		se.Close()
	}
}

// TestNominalCornerMatchesReference keeps the reference-grade anchor: the tt
// corner (all scales 1) must correlate with the nominal reference timer.
func TestNominalCornerMatchesReference(t *testing.T) {
	b := genDesign(t)
	a, err := New(b.D, b.Lib, b.Con, b.Par, DefaultCorners(), core.Options{TopK: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	tt := a.CornerIndex("tt")
	r, ms, _, _, err := exp.Correlate(a.Ref.EndpointSlacks(), a.Eng.Slacks(tt))
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.999999 || ms.Worst > 1e-6 {
		t.Errorf("tt corner vs reference: corr %v worst %v", r, ms.Worst)
	}
}

func TestNewRejectsEmptyCorners(t *testing.T) {
	b := genDesign(t)
	if _, err := New(b.D, b.Lib, b.Con, b.Par, nil, core.Options{TopK: 2}); err == nil {
		t.Error("empty corner list accepted")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	b := genDesign(t)
	a, err := New(b.D, b.Lib, b.Con, b.Par, DefaultCorners(), core.Options{TopK: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	a.Close() // second close must not panic
}
