package mc

import (
	"testing"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/liberty"
	"insta/internal/refsta"
)

func extractTables(t testing.TB, seed int64) *circuitops.Tables {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "mctest", Seed: seed, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 8, Layers: 4, Width: 8,
		CrossFrac: 0.12, NumPIs: 3, NumPOs: 3,
		Period: 900, Uncertainty: 10, Die: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return circuitops.Extract(ref)
}

func TestValidatePOCV(t *testing.T) {
	tab := extractTables(t, 1)
	res, err := ValidatePOCV(tab, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corr < 0.999 {
		t.Errorf("MC vs POCV correlation %v below 0.999", res.Corr)
	}
	// The POCV approximation error on these graphs should be small relative
	// to arrival magnitudes.
	if res.RelErr.Avg > 0.03 {
		t.Errorf("average relative error %v above 3%%", res.RelErr.Avg)
	}
	if res.RelErr.Worst > 0.10 {
		t.Errorf("worst relative error %v above 10%%", res.RelErr.Worst)
	}
	t.Logf("MC(%d): corr=%.6f relErr(avg=%.4f, wst=%.4f) bias=%.2f ps",
		res.Samples, res.Corr, res.RelErr.Avg, res.RelErr.Worst, res.Bias)
}

func TestValidatePOCVDeterministic(t *testing.T) {
	tab := extractTables(t, 2)
	a, err := ValidatePOCV(tab, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ValidatePOCV(tab, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Corr != b.Corr || a.RelErr != b.RelErr || a.Bias != b.Bias {
		t.Error("same seed produced different results")
	}
	c, err := ValidatePOCV(tab, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bias == c.Bias {
		t.Error("different seeds produced identical bias (suspicious)")
	}
}

func TestValidatePOCVRejectsTinySampleCount(t *testing.T) {
	tab := extractTables(t, 3)
	if _, err := ValidatePOCV(tab, 5, 1); err == nil {
		t.Error("sample count 5 accepted")
	}
}
