// Package mc validates the POCV statistical model by brute force: it draws
// per-arc delay samples from the extracted Gaussian distributions, runs a
// plain deterministic max-propagation per sample, and compares the empirical
// 3-sigma quantile of each endpoint's arrival against the corner INSTA's
// analytic propagation reports (mean + 3*sigma of the merged distribution).
//
// The two cannot agree exactly — POCV propagates the single
// corner-maximizing path's Gaussian through each merge, while the true
// maximum of several near-critical Gaussians is slightly larger and
// non-Gaussian — so the residual this package measures is precisely the
// POCV approximation error that commercial signoff accepts. Keeping it
// small on the generated designs is a correctness check on the whole
// statistical pipeline.
package mc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"insta/internal/circuitops"
	"insta/internal/levelize"
	"insta/internal/liberty"
	"insta/internal/num"
)

// Result summarizes one validation run.
type Result struct {
	Samples   int
	Endpoints int
	// Corr is the Pearson correlation between empirical quantiles and POCV
	// corner arrivals over all timed (endpoint, transition) pairs.
	Corr float64
	// RelErr is |empirical - pocv| / empirical, aggregated.
	RelErr num.MismatchStats
	// Bias is the mean signed error (pocv - empirical): negative means POCV
	// is optimistic (underestimates the true quantile), the expected
	// direction at balanced merge points.
	Bias float64
}

// quantile3Sigma is the Gaussian CDF at +3 sigma.
const quantile3Sigma = 0.9986501019683699

// graph is the propagation scaffolding shared by the analytic pass and the
// Monte Carlo trials: a level order, fan-in CSR and the pin→startpoint map.
type graph struct {
	lv      *levelize.Result
	start   []int32
	adjArc  []int32
	spOfPin []int32
}

func buildGraph(t *circuitops.Tables) (*graph, error) {
	lvArcs := make([]levelize.Arc, len(t.Arcs))
	for i := range t.Arcs {
		lvArcs[i] = levelize.Arc{From: t.Arcs[i].From, To: t.Arcs[i].To}
	}
	lv, err := levelize.Levelize(t.NumPins, lvArcs)
	if err != nil {
		return nil, err
	}
	n := t.NumPins
	counts := make([]int32, n+1)
	for i := range t.Arcs {
		counts[t.Arcs[i].To+1]++
	}
	start := make([]int32, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + counts[i+1]
	}
	adjArc := make([]int32, len(t.Arcs))
	cursor := make([]int32, n)
	for i := range t.Arcs {
		to := t.Arcs[i].To
		adjArc[start[to]+cursor[to]] = int32(i)
		cursor[to]++
	}
	spOfPin := make([]int32, n)
	for i := range spOfPin {
		spOfPin[i] = -1
	}
	for i, s := range t.SPs {
		spOfPin[s.Pin] = int32(i)
	}
	return &graph{lv: lv, start: start, adjArc: adjArc, spOfPin: spOfPin}, nil
}

// simulateQuantiles runs `samples` Monte Carlo trials and returns the
// empirical 3-sigma arrival quantile per (endpoint, transition); NaN marks
// pairs that were untimed in any trial. One z per arc is shared between the
// arc's transitions (device variation), one z per startpoint.
func simulateQuantiles(t *circuitops.Tables, g *graph, samples int, seed int64) [][2]float64 {
	n := t.NumPins
	rng := rand.New(rand.NewSource(seed))
	epSamples := make([][]float64, 2*len(t.EPs))
	for i := range epSamples {
		epSamples[i] = make([]float64, 0, samples)
	}
	arr := make([][2]float64, n)
	zArc := make([]float64, len(t.Arcs))
	for trial := 0; trial < samples; trial++ {
		for i := range zArc {
			zArc[i] = rng.NormFloat64()
		}
		for _, p := range g.lv.Order {
			for rf := 0; rf < 2; rf++ {
				if sp := g.spOfPin[p]; sp >= 0 {
					// Startpoint variation shares the trial's first arc z
					// stream deterministically via its own draw.
					arr[p][rf] = t.SPs[sp].Mean + t.SPs[sp].Std*zArc[int(sp)%len(zArc)]
					continue
				}
				best := math.Inf(-1)
				for _, ai := range g.adjArc[g.start[p]:g.start[p+1]] {
					a := &t.Arcs[ai]
					mean, std := arcDist(a, rf)
					d := mean + std*zArc[ai]
					inRFs, nn := liberty.Unate(a.Sense).InRFs(rf)
					for k := 0; k < nn; k++ {
						if v := arr[a.From][inRFs[k]] + d; v > best {
							best = v
						}
					}
				}
				arr[p][rf] = best
			}
		}
		for i, ep := range t.EPs {
			for rf := 0; rf < 2; rf++ {
				if !math.IsInf(arr[ep.Pin][rf], -1) {
					epSamples[2*i+rf] = append(epSamples[2*i+rf], arr[ep.Pin][rf])
				}
			}
		}
	}
	out := make([][2]float64, len(t.EPs))
	for i := range t.EPs {
		for rf := 0; rf < 2; rf++ {
			ss := epSamples[2*i+rf]
			if len(ss) < samples {
				out[i][rf] = math.NaN()
				continue
			}
			sort.Float64s(ss)
			out[i][rf] = ss[int(float64(len(ss)-1)*quantile3Sigma)]
		}
	}
	return out
}

// EndpointQuantiles runs `samples` Monte Carlo trials on the extracted
// tables and returns the empirical 3-sigma arrival quantile per endpoint and
// transition (indexed like Tables.EPs; NaN marks untimed pairs). This is the
// ground-truth arrival a statistical engine's corner values are judged
// against in differential tests.
func EndpointQuantiles(t *circuitops.Tables, samples int, seed int64) ([][2]float64, error) {
	if samples < 10 {
		return nil, fmt.Errorf("mc: need at least 10 samples, got %d", samples)
	}
	g, err := buildGraph(t)
	if err != nil {
		return nil, err
	}
	return simulateQuantiles(t, g, samples, seed), nil
}

// ValidatePOCV runs `samples` Monte Carlo trials on the extracted tables and
// compares empirical endpoint arrival quantiles against POCV corner
// arrivals computed by analytic (K=1) propagation.
func ValidatePOCV(t *circuitops.Tables, samples int, seed int64) (*Result, error) {
	if samples < 10 {
		return nil, fmt.Errorf("mc: need at least 10 samples, got %d", samples)
	}
	g, err := buildGraph(t)
	if err != nil {
		return nil, err
	}

	// Analytic POCV corner arrivals (K=1 max-merge of distributions).
	n := t.NumPins
	pocvMean := make([][2]float64, n)
	pocvStd := make([][2]float64, n)
	pocvCorner := make([][2]float64, n)
	for _, p := range g.lv.Order {
		for rf := 0; rf < 2; rf++ {
			if sp := g.spOfPin[p]; sp >= 0 {
				pocvMean[p][rf] = t.SPs[sp].Mean
				pocvStd[p][rf] = t.SPs[sp].Std
				pocvCorner[p][rf] = t.SPs[sp].Mean + t.NSigma*t.SPs[sp].Std
				continue
			}
			best := math.Inf(-1)
			for _, ai := range g.adjArc[g.start[p]:g.start[p+1]] {
				a := &t.Arcs[ai]
				mean, std := arcDist(a, rf)
				inRFs, nn := liberty.Unate(a.Sense).InRFs(rf)
				for k := 0; k < nn; k++ {
					prf := inRFs[k]
					if math.IsInf(pocvCorner[a.From][prf], -1) {
						continue
					}
					m := pocvMean[a.From][prf] + mean
					s := num.RSS(pocvStd[a.From][prf], std)
					if c := m + t.NSigma*s; c > best {
						best = c
						pocvMean[p][rf] = m
						pocvStd[p][rf] = s
					}
				}
			}
			pocvCorner[p][rf] = best
		}
	}

	quantiles := simulateQuantiles(t, g, samples, seed)

	// Compare quantiles.
	var emp, pocv []float64
	for i, ep := range t.EPs {
		for rf := 0; rf < 2; rf++ {
			q := quantiles[i][rf]
			if math.IsNaN(q) || math.IsInf(pocvCorner[ep.Pin][rf], -1) {
				continue
			}
			emp = append(emp, q)
			pocv = append(pocv, pocvCorner[ep.Pin][rf])
		}
	}
	res := &Result{Samples: samples, Endpoints: len(t.EPs)}
	if res.Corr, err = num.Pearson(emp, pocv); err != nil {
		return nil, err
	}
	var relSum, relWorst, bias float64
	for i := range emp {
		if emp[i] == 0 {
			continue
		}
		rel := math.Abs(emp[i]-pocv[i]) / math.Abs(emp[i])
		relSum += rel
		if rel > relWorst {
			relWorst = rel
		}
		bias += pocv[i] - emp[i]
	}
	if len(emp) > 0 {
		res.RelErr = num.MismatchStats{Avg: relSum / float64(len(emp)), Worst: relWorst}
		res.Bias = bias / float64(len(emp))
	}
	return res, nil
}

func arcDist(a *circuitops.ArcRow, rf int) (mean, std float64) {
	if rf == liberty.Rise {
		return a.MeanRise, a.StdRise
	}
	return a.MeanFall, a.StdFall
}
