// Package vlog reads and writes the gate-level structural Verilog subset
// used by this reproduction: one flat module with scalar ports, wires, and
// named-port-connection cell instances. Clock-network structure (which has
// no netlist representation — flip-flop clock pins are fed by the modelled
// clock tree, as a signoff tool sees propagated clocks) rides along in
// structured `//insta:` comments so a written file reads back to an
// identical design.
package vlog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/num"
)

// Write emits design d as structural Verilog. Net, cell and port names are
// emitted verbatim (the generator produces identifier-safe names).
func Write(w io.Writer, d *netlist.Design, lib *liberty.Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "// insta structural netlist\n")
	fmt.Fprintf(bw, "module %s (", identify(d.Name))

	var ports []string
	for _, p := range d.PortIns {
		ports = append(ports, identify(d.Pins[p].Name))
	}
	for _, p := range d.PortOuts {
		ports = append(ports, identify(d.Pins[p].Name))
	}
	fmt.Fprintf(bw, "%s);\n", strings.Join(ports, ", "))

	for _, p := range d.PortIns {
		fmt.Fprintf(bw, "  input %s;\n", identify(d.Pins[p].Name))
	}
	for _, p := range d.PortOuts {
		fmt.Fprintf(bw, "  output %s;\n", identify(d.Pins[p].Name))
	}
	for ni := range d.Nets {
		net := &d.Nets[ni]
		// Nets driven by or sinking into a port reuse the port name; all
		// others get a wire declaration.
		if d.Pins[net.Driver].Cell == netlist.NoCell {
			continue
		}
		if len(net.Sinks) == 1 && d.Pins[net.Sinks[0]].Cell == netlist.NoCell {
			continue
		}
		fmt.Fprintf(bw, "  wire %s;\n", identify(net.Name))
	}

	// Ports that share a multi-sink net with other loads need an explicit
	// continuous assignment.
	for ni := range d.Nets {
		net := &d.Nets[ni]
		ref := netRef(d, netlist.NetID(ni))
		for _, sk := range net.Sinks {
			pin := &d.Pins[sk]
			if pin.Cell == netlist.NoCell && identify(pin.Name) != ref {
				fmt.Fprintf(bw, "  assign %s = %s;\n", identify(pin.Name), ref)
			}
		}
	}

	for ci := range d.Cells {
		cell := &d.Cells[ci]
		lc := lib.Cell(cell.LibCell)
		fmt.Fprintf(bw, "  %s %s (", lc.Name, identify(cell.Name))
		var conns []string
		for _, p := range cell.Pins {
			pin := &d.Pins[p]
			local := d.LocalPinName(p)
			if pin.IsClock {
				continue // fed by the clock tree, carried in the sidecar
			}
			if pin.Net == netlist.NoNet {
				continue
			}
			conns = append(conns, fmt.Sprintf(".%s(%s)", local, netRef(d, pin.Net)))
		}
		fmt.Fprintf(bw, "%s);\n", strings.Join(conns, ", "))
	}
	fmt.Fprintf(bw, "endmodule\n\n")

	// Clock-network sidecar.
	if ct := d.Clock; ct != nil {
		fmt.Fprintf(bw, "//insta:clocktree %d\n", ct.NumNodes())
		for i := 0; i < ct.NumNodes(); i++ {
			fmt.Fprintf(bw, "//insta:clocknode %d %d %.17g %.17g\n",
				i, ct.Parent[i], ct.Edge[i].Mean, ct.Edge[i].Std)
		}
		type bind struct {
			pin  string
			node int32
		}
		var binds []bind
		for p, n := range ct.Sinks() {
			binds = append(binds, bind{d.Pins[p].Name, n})
		}
		sort.Slice(binds, func(a, b int) bool { return binds[a].pin < binds[b].pin })
		for _, b := range binds {
			fmt.Fprintf(bw, "//insta:clockpin %s %d\n", b.pin, b.node)
		}
	}
	// Placement sidecar.
	fmt.Fprintf(bw, "//insta:placement\n")
	for ci := range d.Cells {
		c := &d.Cells[ci]
		fmt.Fprintf(bw, "//insta:cellpos %s %.17g %.17g %.17g %d\n",
			identify(c.Name), c.X, c.Y, c.Width, boolInt(c.Fixed))
	}
	for _, p := range append(append([]netlist.PinID(nil), d.PortIns...), d.PortOuts...) {
		fmt.Fprintf(bw, "//insta:portpos %s %.17g %.17g\n",
			identify(d.Pins[p].Name), d.Pins[p].X, d.Pins[p].Y)
	}
	return bw.Flush()
}

// netRef names the signal attached to a net: the driving input port's name,
// the output port's name for a single-sink port net, otherwise the wire
// name.
func netRef(d *netlist.Design, n netlist.NetID) string {
	net := &d.Nets[n]
	if d.Pins[net.Driver].Cell == netlist.NoCell {
		return identify(d.Pins[net.Driver].Name)
	}
	if len(net.Sinks) == 1 && d.Pins[net.Sinks[0]].Cell == netlist.NoCell {
		return identify(d.Pins[net.Sinks[0]].Name)
	}
	return identify(net.Name)
}

func identify(s string) string { return s }

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Read parses a file produced by Write back into a design bound to lib.
func Read(r io.Reader, lib *liberty.Library) (*netlist.Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var d *netlist.Design
	var inputs, outputs []string
	assigns := map[string]string{} // output port -> driving signal
	type inst struct {
		libCell int32
		name    string
		conns   map[string]string // pin -> signal
	}
	var insts []inst
	wires := map[string]bool{}

	var clockNodes [][4]string
	var clockPins [][2]string
	cellPos := map[string][4]string{}
	portPos := map[string][2]string{}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "endmodule":
			continue
		case strings.HasPrefix(line, "//insta:clocktree"):
			continue
		case strings.HasPrefix(line, "//insta:clocknode "):
			f := strings.Fields(strings.TrimPrefix(line, "//insta:clocknode "))
			if len(f) != 4 {
				return nil, fmt.Errorf("vlog: line %d: bad clocknode", lineNo)
			}
			clockNodes = append(clockNodes, [4]string{f[0], f[1], f[2], f[3]})
		case strings.HasPrefix(line, "//insta:clockpin "):
			f := strings.Fields(strings.TrimPrefix(line, "//insta:clockpin "))
			if len(f) != 2 {
				return nil, fmt.Errorf("vlog: line %d: bad clockpin", lineNo)
			}
			clockPins = append(clockPins, [2]string{f[0], f[1]})
		case strings.HasPrefix(line, "//insta:cellpos "):
			f := strings.Fields(strings.TrimPrefix(line, "//insta:cellpos "))
			if len(f) != 5 {
				return nil, fmt.Errorf("vlog: line %d: bad cellpos", lineNo)
			}
			cellPos[f[0]] = [4]string{f[1], f[2], f[3], f[4]}
		case strings.HasPrefix(line, "//insta:portpos "):
			f := strings.Fields(strings.TrimPrefix(line, "//insta:portpos "))
			if len(f) != 3 {
				return nil, fmt.Errorf("vlog: line %d: bad portpos", lineNo)
			}
			portPos[f[0]] = [2]string{f[1], f[2]}
		case strings.HasPrefix(line, "//insta:placement"), strings.HasPrefix(line, "//"):
			continue
		case strings.HasPrefix(line, "module "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "module "))
			if i := strings.IndexByte(name, '('); i >= 0 {
				name = strings.TrimSpace(name[:i])
			}
			d = netlist.New(name)
		case strings.HasPrefix(line, "input "):
			inputs = append(inputs, trimDecl(line, "input "))
		case strings.HasPrefix(line, "output "):
			outputs = append(outputs, trimDecl(line, "output "))
		case strings.HasPrefix(line, "wire "):
			wires[trimDecl(line, "wire ")] = true
		case strings.HasPrefix(line, "assign "):
			body := trimDecl(line, "assign ")
			parts := strings.SplitN(body, "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("vlog: line %d: bad assign", lineNo)
			}
			assigns[strings.TrimSpace(parts[0])] = strings.TrimSpace(parts[1])
		default:
			in, err := parseInstance(line, lib)
			if err != nil {
				return nil, fmt.Errorf("vlog: line %d: %w", lineNo, err)
			}
			insts = append(insts, in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, fmt.Errorf("vlog: no module declaration found")
	}

	// Build: ports, cells + pins, then nets from the signal map.
	signalDriver := map[string]netlist.PinID{}
	signalSinks := map[string][]netlist.PinID{}

	for _, name := range inputs {
		p := d.AddPort(name, netlist.Input)
		signalDriver[name] = p
	}
	for _, name := range outputs {
		p := d.AddPort(name, netlist.Output)
		sig := name
		if alias, ok := assigns[name]; ok {
			sig = alias
		}
		signalSinks[sig] = append(signalSinks[sig], p)
	}
	for _, in := range insts {
		lc := lib.Cell(in.libCell)
		c := d.AddCell(in.name, in.libCell, lc.Seq)
		if pos, ok := cellPos[in.name]; ok {
			d.Cells[c].X, _ = strconv.ParseFloat(pos[0], 64)
			d.Cells[c].Y, _ = strconv.ParseFloat(pos[1], 64)
			d.Cells[c].Width, _ = strconv.ParseFloat(pos[2], 64)
			d.Cells[c].Fixed = pos[3] == "1"
		} else {
			d.Cells[c].Width = lc.Area
		}
		for _, pn := range lc.Inputs {
			isClock := lc.Seq && pn == lc.ClockPin
			pin := d.AddPin(c, pn, netlist.Input, isClock)
			if sig, ok := in.conns[pn]; ok && !isClock {
				signalSinks[sig] = append(signalSinks[sig], pin)
			}
		}
		for _, pn := range lc.Outputs {
			pin := d.AddPin(c, pn, netlist.Output, false)
			if sig, ok := in.conns[pn]; ok {
				signalDriver[sig] = pin
			}
		}
	}
	// Nets. Wires without a declared name (port-named signals) included.
	var signals []string
	for sig := range signalDriver {
		signals = append(signals, sig)
	}
	sort.Strings(signals)
	for _, sig := range signals {
		drv := signalDriver[sig]
		name := sig
		if d.Pins[drv].Cell != netlist.NoCell && !wires[sig] {
			// Port-named net driven by a cell: keep the signal name.
			name = sig
		}
		n := d.AddNet(name, drv)
		d.Connect(n, signalSinks[sig]...)
	}

	// Clock tree.
	if len(clockNodes) > 0 {
		var ct *netlist.ClockTree
		for _, cn := range clockNodes {
			parent, _ := strconv.ParseInt(cn[1], 10, 32)
			mean, _ := strconv.ParseFloat(cn[2], 64)
			std, _ := strconv.ParseFloat(cn[3], 64)
			if ct == nil {
				if parent != -1 {
					return nil, fmt.Errorf("vlog: first clock node is not the root")
				}
				ct = netlist.NewClockTree(num.Dist{Mean: mean, Std: std})
				continue
			}
			ct.AddNode(int32(parent), num.Dist{Mean: mean, Std: std})
		}
		for _, cp := range clockPins {
			pin, ok := d.PinByName(cp[0])
			if !ok {
				return nil, fmt.Errorf("vlog: clockpin %q not in design", cp[0])
			}
			node, err := strconv.ParseInt(cp[1], 10, 32)
			if err != nil || node < 0 || int(node) >= ct.NumNodes() {
				return nil, fmt.Errorf("vlog: clockpin %q bad node %q", cp[0], cp[1])
			}
			ct.BindSink(pin, int32(node))
		}
		if err := ct.Finalize(); err != nil {
			return nil, err
		}
		d.Clock = ct
	}
	for name, pos := range portPos {
		if p, ok := d.PinByName(name); ok {
			d.Pins[p].X, _ = strconv.ParseFloat(pos[0], 64)
			d.Pins[p].Y, _ = strconv.ParseFloat(pos[1], 64)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("vlog: parsed design invalid: %w", err)
	}
	return d, nil
}

func trimDecl(line, prefix string) string {
	s := strings.TrimPrefix(line, prefix)
	return strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), ";"))
}

// parseInstance parses `LIBCELL name (.A(n1), .B(n2));`.
func parseInstance(line string, lib *liberty.Library) (struct {
	libCell int32
	name    string
	conns   map[string]string
}, error) {
	var out struct {
		libCell int32
		name    string
		conns   map[string]string
	}
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ");") {
		return out, fmt.Errorf("unparseable statement %q", line)
	}
	head := strings.Fields(line[:open])
	if len(head) != 2 {
		return out, fmt.Errorf("bad instance head %q", line[:open])
	}
	id, ok := lib.CellByName(head[0])
	if !ok {
		return out, fmt.Errorf("unknown library cell %q", head[0])
	}
	out.libCell = id
	out.name = head[1]
	out.conns = map[string]string{}
	body := strings.TrimSuffix(line[open+1:], ");")
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.HasPrefix(part, ".") {
			return out, fmt.Errorf("positional connections unsupported: %q", part)
		}
		lp := strings.IndexByte(part, '(')
		if lp < 0 || !strings.HasSuffix(part, ")") {
			return out, fmt.Errorf("bad connection %q", part)
		}
		pin := part[1:lp]
		sig := strings.TrimSuffix(part[lp+1:], ")")
		out.conns[pin] = strings.TrimSpace(sig)
	}
	return out, nil
}
