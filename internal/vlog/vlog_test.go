package vlog

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"insta/internal/bench"
	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/rc"
	"insta/internal/refsta"
	"insta/internal/sdc"
)

func genDesign(t testing.TB, seed int64) *bench.Design {
	t.Helper()
	b, err := bench.Generate(bench.Spec{
		Name: "vlogtest", Seed: seed, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 6, Layers: 3, Width: 6,
		CrossFrac: 0.1, NumPIs: 3, NumPOs: 3,
		Period: 700, Uncertainty: 10, FalsePaths: 1, Multicycles: 1, Die: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRoundTripStructure(t *testing.T) {
	b := genDesign(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, b.D, b.Lib); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), b.Lib)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.D.Name {
		t.Errorf("name %q != %q", got.Name, b.D.Name)
	}
	if got.NumCells() != b.D.NumCells() {
		t.Errorf("cells %d != %d", got.NumCells(), b.D.NumCells())
	}
	if got.NumPins() != b.D.NumPins() {
		t.Errorf("pins %d != %d", got.NumPins(), b.D.NumPins())
	}
	if len(got.Nets) != len(b.D.Nets) {
		t.Errorf("nets %d != %d", len(got.Nets), len(b.D.Nets))
	}
	if got.Clock == nil || got.Clock.NumNodes() != b.D.Clock.NumNodes() {
		t.Error("clock tree lost")
	}
	// Every cell keeps its library binding and position.
	for i := range b.D.Cells {
		want := &b.D.Cells[i]
		id, ok := got.CellByName(want.Name)
		if !ok {
			t.Fatalf("cell %q lost", want.Name)
		}
		c := &got.Cells[id]
		if c.LibCell != want.LibCell {
			t.Fatalf("cell %q libcell %d != %d", want.Name, c.LibCell, want.LibCell)
		}
		if c.X != want.X || c.Y != want.Y {
			t.Fatalf("cell %q position lost", want.Name)
		}
	}
}

// TestRoundTripTiming is the strong check: the re-read design must produce
// identical timing under the reference engine (slacks matched per endpoint
// pin name — pin ids are permuted by parsing order).
func TestRoundTripTiming(t *testing.T) {
	b := genDesign(t, 2)
	refA, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	slackByName := map[string]float64{}
	for i, ep := range refA.Endpoints() {
		slackByName[b.D.Pins[ep].Name] = refA.EndpointSlacks()[i]
	}

	var buf bytes.Buffer
	if err := Write(&buf, b.D, b.Lib); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), b.Lib)
	if err != nil {
		t.Fatal(err)
	}
	// Constraints are keyed by pin id: remap by name onto the new design.
	con := remapConstraints(t, b, got)
	par := rc.FromPlacement(got, b.Par.Params)
	refB, err := refsta.New(got, b.Lib, con, par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range refB.Endpoints() {
		name := got.Pins[ep].Name
		want, ok := slackByName[name]
		if !ok {
			t.Fatalf("endpoint %q not in original", name)
		}
		gotS := refB.EndpointSlacks()[i]
		if math.IsInf(want, 1) && math.IsInf(gotS, 1) {
			continue
		}
		if math.Abs(want-gotS) > 1e-9 {
			t.Fatalf("endpoint %q: slack %v != %v", name, gotS, want)
		}
	}
}

// remapConstraints translates the pin-id-keyed constraint maps onto the
// re-read design by pin name.
func remapConstraints(t testing.TB, b *bench.Design, got *netlist.Design) *sdc.Constraints {
	t.Helper()
	mapPin := func(p netlist.PinID) netlist.PinID {
		q, ok := got.PinByName(b.D.Pins[p].Name)
		if !ok {
			t.Fatalf("pin %q missing after round trip", b.D.Pins[p].Name)
		}
		return q
	}
	con := sdc.New(b.Con.Clock)
	for p, v := range b.Con.InputDelay {
		con.InputDelay[mapPin(p)] = v
	}
	for p, v := range b.Con.InputSlew {
		con.InputSlew[mapPin(p)] = v
	}
	for p, v := range b.Con.OutputDelay {
		con.OutputDelay[mapPin(p)] = v
	}
	for p, v := range b.Con.OutputLoad {
		con.OutputLoad[mapPin(p)] = v
	}
	for _, ex := range b.Con.Exceptions {
		ne := sdc.Exception{Kind: ex.Kind, Cycles: ex.Cycles}
		for _, p := range ex.From {
			ne.From = append(ne.From, mapPin(p))
		}
		for _, p := range ex.To {
			ne.To = append(ne.To, mapPin(p))
		}
		con.Exceptions = append(con.Exceptions, ne)
	}
	return con
}

func TestReadRejectsGarbage(t *testing.T) {
	lib := liberty.NewSynthetic(liberty.TechN3())
	cases := map[string]string{
		"no module":    "wire x;\n",
		"bad instance": "module m ();\n  FOO u1 (.A(x));\nendmodule\n",
		"positional":   "module m ();\n  INV_X1 u1 (x, y);\nendmodule\n",
		"bad assign":   "module m ();\n  assign x;\nendmodule\n",
		"bad clockpin": "module m ();\nendmodule\n//insta:clockpin onlyone\n",
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc), lib); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteIsParsableText(t *testing.T) {
	b := genDesign(t, 3)
	var buf bytes.Buffer
	if err := Write(&buf, b.D, b.Lib); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "module vlogtest (") {
		t.Error("missing module header")
	}
	if !strings.Contains(text, "endmodule") {
		t.Error("missing endmodule")
	}
	if !strings.Contains(text, "//insta:clocktree") {
		t.Error("missing clock sidecar")
	}
}
