package netlist

import (
	"math"
	"strings"
	"testing"

	"insta/internal/num"
)

// buildTiny builds: port a -> inv u1 -> port z, plus a DFF u2 clocked by a
// 2-node clock tree.
func buildTiny(t *testing.T) *Design {
	t.Helper()
	d := New("tiny")
	a := d.AddPort("a", Input)
	z := d.AddPort("z", Output)

	u1 := d.AddCell("u1", 0, false)
	u1a := d.AddPin(u1, "A", Input, false)
	u1y := d.AddPin(u1, "Y", Output, false)

	u2 := d.AddCell("u2", 1, true)
	u2d := d.AddPin(u2, "D", Input, false)
	u2cp := d.AddPin(u2, "CP", Input, true)
	u2q := d.AddPin(u2, "Q", Output, false)

	n1 := d.AddNet("n1", a)
	d.Connect(n1, u1a)
	n2 := d.AddNet("n2", u1y)
	d.Connect(n2, u2d)
	n3 := d.AddNet("n3", u2q)
	d.Connect(n3, z)

	ct := NewClockTree(num.Dist{Mean: 10, Std: 1})
	leaf := ct.AddNode(ct.Root(), num.Dist{Mean: 20, Std: 2})
	ct.BindSink(u2cp, leaf)
	if err := ct.Finalize(); err != nil {
		t.Fatal(err)
	}
	d.Clock = ct
	return d
}

func TestBuildAndValidate(t *testing.T) {
	d := buildTiny(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.NumCells() != 2 || d.NumPins() != 7 {
		t.Errorf("counts: cells=%d pins=%d", d.NumCells(), d.NumPins())
	}
}

func TestNameLookups(t *testing.T) {
	d := buildTiny(t)
	p, ok := d.PinByName("u1/A")
	if !ok {
		t.Fatal("u1/A not found")
	}
	if d.LocalPinName(p) != "A" {
		t.Errorf("LocalPinName = %q, want A", d.LocalPinName(p))
	}
	if _, ok := d.PinByName("nope"); ok {
		t.Error("found nonexistent pin")
	}
	c, ok := d.CellByName("u2")
	if !ok {
		t.Fatal("u2 not found")
	}
	if got := d.CellPin(c, "Q"); got == NoPin {
		t.Error("CellPin(u2, Q) = NoPin")
	}
	if got := d.CellPin(c, "ZZ"); got != NoPin {
		t.Errorf("CellPin(u2, ZZ) = %d, want NoPin", got)
	}
	port, _ := d.PinByName("a")
	if d.LocalPinName(port) != "a" {
		t.Errorf("port LocalPinName = %q", d.LocalPinName(port))
	}
}

func TestValidateCatchesUnconnected(t *testing.T) {
	d := New("bad")
	c := d.AddCell("u1", 0, false)
	d.AddPin(c, "A", Input, false)
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Errorf("want unconnected error, got %v", err)
	}
}

func TestValidateCatchesBadDriver(t *testing.T) {
	d := New("bad")
	c := d.AddCell("u1", 0, false)
	in := d.AddPin(c, "A", Input, false)
	// Driving a net from an input cell pin is illegal.
	d.AddNet("n", in)
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "not a source") {
		t.Errorf("want driver error, got %v", err)
	}
}

func TestValidateCatchesClockPinWithoutTree(t *testing.T) {
	d := New("bad")
	c := d.AddCell("ff", 0, true)
	d.AddPin(c, "CP", Input, true)
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "clock") {
		t.Errorf("want clock error, got %v", err)
	}
}

func TestClockTreeArrival(t *testing.T) {
	ct := NewClockTree(num.Dist{Mean: 10, Std: 3})
	a := ct.AddNode(ct.Root(), num.Dist{Mean: 5, Std: 4})
	if err := ct.Finalize(); err != nil {
		t.Fatal(err)
	}
	arr := ct.Arrival(a)
	if arr.Mean != 15 {
		t.Errorf("mean = %v, want 15", arr.Mean)
	}
	if math.Abs(arr.Std-5) > 1e-12 {
		t.Errorf("std = %v, want 5", arr.Std)
	}
}

func TestClockTreeLCAAndCommonVar(t *testing.T) {
	//        root(σ=1)
	//        /      \
	//      a(σ=2)   b(σ=2)
	//      /   \
	//    a1     a2
	ct := NewClockTree(num.Dist{Mean: 0, Std: 1})
	a := ct.AddNode(ct.Root(), num.Dist{Mean: 1, Std: 2})
	b := ct.AddNode(ct.Root(), num.Dist{Mean: 1, Std: 2})
	a1 := ct.AddNode(a, num.Dist{Mean: 1, Std: 1})
	a2 := ct.AddNode(a, num.Dist{Mean: 1, Std: 1})
	if err := ct.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := ct.LCA(a1, a2); got != a {
		t.Errorf("LCA(a1,a2) = %d, want %d", got, a)
	}
	if got := ct.LCA(a1, b); got != ct.Root() {
		t.Errorf("LCA(a1,b) = %d, want root", got)
	}
	if got := ct.LCA(a1, a1); got != a1 {
		t.Errorf("LCA(a1,a1) = %d, want a1", got)
	}
	// Common var a1/a2 = root var + a edge var = 1 + 4 = 5.
	if got := ct.CommonVar(a1, a2); got != 5 {
		t.Errorf("CommonVar(a1,a2) = %v, want 5", got)
	}
	// Common var across branches = root var only.
	if got := ct.CommonVar(a1, b); got != 1 {
		t.Errorf("CommonVar(a1,b) = %v, want 1", got)
	}
	// Self common var = full path var.
	if got := ct.CommonVar(a1, a1); got != 6 {
		t.Errorf("CommonVar(a1,a1) = %v, want 6", got)
	}
}

func TestClockTreeCommonVarSymmetric(t *testing.T) {
	ct := NewClockTree(num.Dist{Std: 1})
	var nodes []int32
	nodes = append(nodes, ct.Root())
	for i := 0; i < 20; i++ {
		parent := nodes[i/2]
		nodes = append(nodes, ct.AddNode(parent, num.Dist{Mean: 1, Std: 0.5}))
	}
	if err := ct.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if ct.CommonVar(a, b) != ct.CommonVar(b, a) {
				t.Fatalf("CommonVar not symmetric for %d,%d", a, b)
			}
			// Shared variance can never exceed either full path variance.
			full := ct.CommonVar(a, a)
			if ct.CommonVar(a, b) > full+1e-12 {
				t.Fatalf("CommonVar(%d,%d) exceeds own path var", a, b)
			}
		}
	}
}

func TestClockTreeFinalizeRejectsForwardParent(t *testing.T) {
	ct := NewClockTree(num.Dist{})
	// Manually corrupt: node whose parent comes after it.
	ct.Parent = append(ct.Parent, 5)
	ct.Edge = append(ct.Edge, num.Dist{})
	if err := ct.Finalize(); err == nil {
		t.Error("Finalize accepted invalid parent ordering")
	}
}

func TestClockTreePanicsBeforeFinalize(t *testing.T) {
	ct := NewClockTree(num.Dist{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic when using unfinalized tree")
		}
	}()
	ct.Arrival(0)
}

func TestClockTreeSinks(t *testing.T) {
	d := buildTiny(t)
	sinks := d.Clock.Sinks()
	if len(sinks) != 1 {
		t.Fatalf("sinks = %v, want 1 entry", sinks)
	}
	cp, _ := d.PinByName("u2/CP")
	if _, ok := d.Clock.SinkOf(cp); !ok {
		t.Error("SinkOf(u2/CP) missing")
	}
}
