// Package netlist defines the gate-level design model shared by the reference
// STA engine, the INSTA core, the sizer, and the placer: cells, pins, nets,
// top-level ports, placement coordinates, and the clock distribution tree used
// for CPPR common-path analysis.
//
// The package deliberately does not import the liberty package; cells refer to
// library cells by integer id so that a library can be swapped (gate sizing)
// without touching the netlist structure.
package netlist

import (
	"fmt"
	"math"

	"insta/internal/num"
)

// CellID, PinID and NetID index into Design.Cells, Design.Pins and
// Design.Nets. NoCell/NoNet mark absent references.
type (
	CellID int32
	PinID  int32
	NetID  int32
)

// Sentinel ids for absent references.
const (
	NoCell CellID = -1
	NoNet  NetID  = -1
	NoPin  PinID  = -1
)

// PinDir is the signal direction of a pin as seen from its cell (or, for a
// top-level port, from the design: an Input port drives logic).
type PinDir uint8

// Pin directions.
const (
	Input PinDir = iota
	Output
)

func (d PinDir) String() string {
	if d == Input {
		return "input"
	}
	return "output"
}

// Cell is one placed instance of a library cell.
type Cell struct {
	Name    string
	LibCell int32 // index into the liberty.Library used with this design
	Pins    []PinID
	X, Y    float64 // lower-left placement coordinate, in site units
	Width   float64 // footprint width in site units (height is one row)
	Fixed   bool    // placement-fixed (macros, pads)
	Seq     bool    // sequential (flip-flop)
}

// Pin is a cell pin or a top-level port (Cell == NoCell).
type Pin struct {
	Name    string // hierarchical name, e.g. "u42/A" or port name
	Cell    CellID
	Net     NetID
	Dir     PinDir
	IsClock bool    // flip-flop clock input, fed by the clock tree
	X, Y    float64 // port location; cell pins use their cell's location
}

// Net connects one driver pin to its sink pins.
type Net struct {
	Name   string
	Driver PinID
	Sinks  []PinID
}

// Design is a flattened gate-level netlist.
type Design struct {
	Name  string
	Cells []Cell
	Pins  []Pin
	Nets  []Net

	// PortIns/PortOuts list the top-level port pins (Cell == NoCell).
	PortIns  []PinID
	PortOuts []PinID

	// Clock is the clock distribution tree (nil for purely combinational
	// designs). It is modelled structurally, outside the data netlist, the
	// way a signoff tool reports propagated clock network latency.
	Clock *ClockTree

	pinByName  map[string]PinID
	cellByName map[string]CellID
}

// New returns an empty design named name.
func New(name string) *Design {
	return &Design{
		Name:       name,
		pinByName:  make(map[string]PinID),
		cellByName: make(map[string]CellID),
	}
}

// NumPins returns the total pin count (cell pins + ports).
func (d *Design) NumPins() int { return len(d.Pins) }

// NumCells returns the cell instance count.
func (d *Design) NumCells() int { return len(d.Cells) }

// AddCell appends a cell instance bound to library cell libCell.
func (d *Design) AddCell(name string, libCell int32, seq bool) CellID {
	id := CellID(len(d.Cells))
	d.Cells = append(d.Cells, Cell{Name: name, LibCell: libCell, Seq: seq, Width: 1})
	d.cellByName[name] = id
	return id
}

// AddPin appends a pin named pinName to cell c. The full pin name is
// "<cell>/<pin>".
func (d *Design) AddPin(c CellID, pinName string, dir PinDir, isClock bool) PinID {
	id := PinID(len(d.Pins))
	full := d.Cells[c].Name + "/" + pinName
	d.Pins = append(d.Pins, Pin{Name: full, Cell: c, Net: NoNet, Dir: dir, IsClock: isClock})
	d.Cells[c].Pins = append(d.Cells[c].Pins, id)
	d.pinByName[full] = id
	return id
}

// AddPort appends a top-level port pin. dir is the direction seen from the
// design core: an Input port drives internal logic (acts like a driver pin).
func (d *Design) AddPort(name string, dir PinDir) PinID {
	id := PinID(len(d.Pins))
	d.Pins = append(d.Pins, Pin{Name: name, Cell: NoCell, Net: NoNet, Dir: dir})
	d.pinByName[name] = id
	if dir == Input {
		d.PortIns = append(d.PortIns, id)
	} else {
		d.PortOuts = append(d.PortOuts, id)
	}
	return id
}

// AddNet appends a net driven by driver. Sinks are attached with Connect.
func (d *Design) AddNet(name string, driver PinID) NetID {
	id := NetID(len(d.Nets))
	d.Nets = append(d.Nets, Net{Name: name, Driver: driver})
	d.Pins[driver].Net = id
	return id
}

// Connect attaches sink pins to net n.
func (d *Design) Connect(n NetID, sinks ...PinID) {
	d.Nets[n].Sinks = append(d.Nets[n].Sinks, sinks...)
	for _, s := range sinks {
		d.Pins[s].Net = n
	}
}

// DisconnectSink detaches sink pin s from net n, leaving s floating
// (reconnect it before validating). It reports whether s was a sink of n.
// Used by netlist surgery such as buffer insertion.
func (d *Design) DisconnectSink(n NetID, s PinID) bool {
	sinks := d.Nets[n].Sinks
	for i, p := range sinks {
		if p == s {
			d.Nets[n].Sinks = append(sinks[:i], sinks[i+1:]...)
			d.Pins[s].Net = NoNet
			return true
		}
	}
	return false
}

// PinPos returns the physical location of pin p: its cell's placement
// coordinate, or the port's own coordinate for top-level pins. Pin offsets
// within a cell are ignored (cells are small relative to wire spans).
func (d *Design) PinPos(p PinID) (x, y float64) {
	pin := d.Pins[p]
	if pin.Cell == NoCell {
		return pin.X, pin.Y
	}
	c := &d.Cells[pin.Cell]
	return c.X, c.Y
}

// PinByName resolves a full pin or port name; ok reports whether it exists.
func (d *Design) PinByName(name string) (PinID, bool) {
	id, ok := d.pinByName[name]
	return id, ok
}

// CellByName resolves a cell instance name; ok reports whether it exists.
func (d *Design) CellByName(name string) (CellID, bool) {
	id, ok := d.cellByName[name]
	return id, ok
}

// CellPin returns cell c's pin whose local (post-slash) name is pinName, or
// NoPin when absent.
func (d *Design) CellPin(c CellID, pinName string) PinID {
	full := d.Cells[c].Name + "/" + pinName
	if id, ok := d.pinByName[full]; ok {
		return id
	}
	return NoPin
}

// LocalPinName strips the cell prefix from pin p's full name. Port names are
// returned unchanged.
func (d *Design) LocalPinName(p PinID) string {
	pin := d.Pins[p]
	if pin.Cell == NoCell {
		return pin.Name
	}
	prefix := d.Cells[pin.Cell].Name + "/"
	return pin.Name[len(prefix):]
}

// Validate checks structural integrity: every net has a driver with Output
// direction (or an Input port), every sink is an Input pin (or Output port),
// every non-clock pin is connected, and pin/cell back-references agree.
func (d *Design) Validate() error {
	for i, c := range d.Cells {
		for _, p := range c.Pins {
			if d.Pins[p].Cell != CellID(i) {
				return fmt.Errorf("netlist: cell %q pin %d back-reference mismatch", c.Name, p)
			}
		}
	}
	for i, n := range d.Nets {
		if n.Driver == NoPin {
			return fmt.Errorf("netlist: net %q has no driver", n.Name)
		}
		drv := d.Pins[n.Driver]
		drvIsSource := (drv.Cell != NoCell && drv.Dir == Output) || (drv.Cell == NoCell && drv.Dir == Input)
		if !drvIsSource {
			return fmt.Errorf("netlist: net %q driver %q is not a source pin", n.Name, drv.Name)
		}
		if drv.Net != NetID(i) {
			return fmt.Errorf("netlist: net %q driver back-reference mismatch", n.Name)
		}
		for _, s := range n.Sinks {
			sp := d.Pins[s]
			sinkIsLoad := (sp.Cell != NoCell && sp.Dir == Input) || (sp.Cell == NoCell && sp.Dir == Output)
			if !sinkIsLoad {
				return fmt.Errorf("netlist: net %q sink %q is not a load pin", n.Name, sp.Name)
			}
			if sp.Net != NetID(i) {
				return fmt.Errorf("netlist: net %q sink %q back-reference mismatch", n.Name, sp.Name)
			}
		}
	}
	for i, p := range d.Pins {
		if p.IsClock {
			if d.Clock == nil {
				return fmt.Errorf("netlist: clock pin %q but design has no clock tree", p.Name)
			}
			if _, ok := d.Clock.SinkOf(PinID(i)); !ok {
				return fmt.Errorf("netlist: clock pin %q not bound to a clock-tree sink", p.Name)
			}
			continue
		}
		if p.Net == NoNet {
			return fmt.Errorf("netlist: pin %q is unconnected", p.Name)
		}
	}
	return nil
}

// ClockTree models the propagated clock network: a rooted tree whose edges
// carry POCV delay distributions. Flip-flop clock pins bind to leaves. CPPR
// common-path credit between a launch and a capture sink is derived from the
// accumulated variance on the shared root→LCA segment.
type ClockTree struct {
	Parent []int32    // Parent[i] is i's parent node; root (node 0) has -1
	Edge   []num.Dist // Edge[i] is the delay from Parent[i] to i; Edge[0] is source latency

	depth     []int32
	cumMean   []float64 // root→node inclusive mean
	cumVar    []float64 // root→node inclusive variance
	sinkOfPin map[PinID]int32
	finalized bool
}

// NewClockTree creates a tree containing only the root with the given source
// insertion delay.
func NewClockTree(sourceLatency num.Dist) *ClockTree {
	return &ClockTree{
		Parent:    []int32{-1},
		Edge:      []num.Dist{sourceLatency},
		sinkOfPin: make(map[PinID]int32),
	}
}

// AddNode appends a node under parent with the given edge delay and returns
// its id.
func (t *ClockTree) AddNode(parent int32, edge num.Dist) int32 {
	id := int32(len(t.Parent))
	t.Parent = append(t.Parent, parent)
	t.Edge = append(t.Edge, edge)
	t.finalized = false
	return id
}

// BindSink associates flip-flop clock pin p with tree node n.
func (t *ClockTree) BindSink(p PinID, n int32) {
	t.sinkOfPin[p] = n
	t.finalized = false
}

// Root returns the root node id (always 0).
func (t *ClockTree) Root() int32 { return 0 }

// SinkOf returns the tree node bound to clock pin p.
func (t *ClockTree) SinkOf(p PinID) (int32, bool) {
	n, ok := t.sinkOfPin[p]
	return n, ok
}

// Sinks returns a copy of the pin→node bindings.
func (t *ClockTree) Sinks() map[PinID]int32 {
	out := make(map[PinID]int32, len(t.sinkOfPin))
	for k, v := range t.sinkOfPin {
		out[k] = v
	}
	return out
}

// Finalize computes depths and cumulative root→node statistics. It must be
// called after construction and before Arrival/CommonVar/LCA.
func (t *ClockTree) Finalize() error {
	n := len(t.Parent)
	t.depth = make([]int32, n)
	t.cumMean = make([]float64, n)
	t.cumVar = make([]float64, n)
	for i := 0; i < n; i++ {
		p := t.Parent[i]
		if i == 0 {
			if p != -1 {
				return fmt.Errorf("netlist: clock tree root must have parent -1, got %d", p)
			}
			t.depth[0] = 0
			t.cumMean[0] = t.Edge[0].Mean
			t.cumVar[0] = t.Edge[0].Std * t.Edge[0].Std
			continue
		}
		if p < 0 || int(p) >= i {
			return fmt.Errorf("netlist: clock tree node %d has invalid parent %d (parents must precede children)", i, p)
		}
		t.depth[i] = t.depth[p] + 1
		t.cumMean[i] = t.cumMean[p] + t.Edge[i].Mean
		t.cumVar[i] = t.cumVar[p] + t.Edge[i].Std*t.Edge[i].Std
	}
	t.finalized = true
	return nil
}

// Arrival returns the propagated clock arrival distribution at node n
// (root source latency included).
func (t *ClockTree) Arrival(n int32) num.Dist {
	t.mustFinal()
	return num.Dist{Mean: t.cumMean[n], Std: sqrt(t.cumVar[n])}
}

// LCA returns the lowest common ancestor of nodes a and b.
func (t *ClockTree) LCA(a, b int32) int32 {
	t.mustFinal()
	for t.depth[a] > t.depth[b] {
		a = t.Parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.Parent[b]
	}
	for a != b {
		a = t.Parent[a]
		b = t.Parent[b]
	}
	return a
}

// CommonVar returns the clock-path variance shared by launch sink a and
// capture sink b: the accumulated variance from the root through LCA(a, b).
func (t *ClockTree) CommonVar(a, b int32) float64 {
	return t.cumVar[t.LCA(a, b)]
}

// NumNodes returns the node count of the tree.
func (t *ClockTree) NumNodes() int { return len(t.Parent) }

func (t *ClockTree) mustFinal() {
	if !t.finalized {
		panic("netlist: ClockTree used before Finalize")
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
