package rc

import (
	"math"
	"testing"
	"testing/quick"

	"insta/internal/netlist"
)

// twoSinkDesign: port a at (0,0) drives cell u1 at (10,0) and cell u2 at (0,5).
func twoSinkDesign() *netlist.Design {
	d := netlist.New("rc")
	a := d.AddPort("a", netlist.Input)
	u1 := d.AddCell("u1", 0, false)
	p1 := d.AddPin(u1, "A", netlist.Input, false)
	y1 := d.AddPin(u1, "Y", netlist.Output, false)
	u2 := d.AddCell("u2", 0, false)
	p2 := d.AddPin(u2, "A", netlist.Input, false)
	y2 := d.AddPin(u2, "Y", netlist.Output, false)
	z := d.AddPort("z", netlist.Output)
	z2 := d.AddPort("z2", netlist.Output)
	n := d.AddNet("n", a)
	d.Connect(n, p1, p2)
	d.Connect(d.AddNet("n1", y1), z)
	d.Connect(d.AddNet("n2", y2), z2)
	d.Cells[u1].X, d.Cells[u1].Y = 10, 0
	d.Cells[u2].X, d.Cells[u2].Y = 0, 5
	return d
}

func TestFromPlacementLengths(t *testing.T) {
	d := twoSinkDesign()
	p := DefaultParams()
	par := FromPlacement(d, p)
	if err := par.Validate(d); err != nil {
		t.Fatal(err)
	}
	b := par.Nets[0].Branch
	if math.Abs(b[0].Len-(10+p.MinLen)) > 1e-12 {
		t.Errorf("branch 0 len = %v, want %v", b[0].Len, 10+p.MinLen)
	}
	if math.Abs(b[1].Len-(5+p.MinLen)) > 1e-12 {
		t.Errorf("branch 1 len = %v, want %v", b[1].Len, 5+p.MinLen)
	}
	if b[0].R != p.RPerUnit*b[0].Len || b[0].C != p.CPerUnit*b[0].Len {
		t.Error("R/C not proportional to length")
	}
}

func TestRebuildNetTracksMovement(t *testing.T) {
	d := twoSinkDesign()
	par := FromPlacement(d, DefaultParams())
	before := par.Nets[0].Branch[0].Len
	d.Cells[0].X = 100 // move u1 far away
	par.RebuildNet(d, 0)
	after := par.Nets[0].Branch[0].Len
	if after <= before {
		t.Errorf("branch length did not grow after move: %v -> %v", before, after)
	}
	if err := par.Validate(d); err != nil {
		t.Fatal(err)
	}
}

func TestBranchDelayElmore(t *testing.T) {
	d := twoSinkDesign()
	p := DefaultParams()
	par := FromPlacement(d, p)
	b := par.Nets[0].Branch[0]
	pinCap := 1.5
	got := par.BranchDelay(0, 0, pinCap)
	wantMean := b.R * (b.C/2 + pinCap)
	if math.Abs(got.Mean-wantMean) > 1e-12 {
		t.Errorf("Elmore mean = %v, want %v", got.Mean, wantMean)
	}
	if math.Abs(got.Std-p.WireSigmaFrac*wantMean) > 1e-12 {
		t.Errorf("sigma = %v, want %v", got.Std, p.WireSigmaFrac*wantMean)
	}
}

func TestBranchDelayMonotoneInCap(t *testing.T) {
	d := twoSinkDesign()
	par := FromPlacement(d, DefaultParams())
	f := func(c1Raw, c2Raw float64) bool {
		c1 := math.Abs(math.Mod(c1Raw, 50))
		c2 := c1 + math.Abs(math.Mod(c2Raw, 10))
		return par.BranchDelay(0, 0, c2).Mean >= par.BranchDelay(0, 0, c1).Mean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegradeSlew(t *testing.T) {
	par := FromPlacement(twoSinkDesign(), DefaultParams())
	if got := par.DegradeSlew(10, 0); got != 10 {
		t.Errorf("zero wire delay should keep slew: %v", got)
	}
	got := par.DegradeSlew(3, 2) // hypot(3, 2.2*2) = hypot(3,4.4)
	want := math.Hypot(3, 4.4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("DegradeSlew = %v, want %v", got, want)
	}
	if par.DegradeSlew(10, 5) < 10 {
		t.Error("degraded slew below driver slew")
	}
}

func TestFromFanoutDeterministic(t *testing.T) {
	d := twoSinkDesign()
	p := DefaultParams()
	a := FromFanout(d, p, 42)
	b := FromFanout(d, p, 42)
	c := FromFanout(d, p, 43)
	if err := a.Validate(d); err != nil {
		t.Fatal(err)
	}
	if a.Nets[0].Branch[0].Len != b.Nets[0].Branch[0].Len {
		t.Error("same seed produced different parasitics")
	}
	if a.Nets[0].Branch[0].Len == c.Nets[0].Branch[0].Len {
		t.Error("different seeds produced identical parasitics (suspicious)")
	}
}

func TestFromFanoutGrowsWithFanout(t *testing.T) {
	// Build a net with 1 sink and a net with 8 sinks; average branch length
	// of the big net should exceed the small one's (log1p growth).
	d := netlist.New("fo")
	drv1 := d.AddPort("d1", netlist.Input)
	drv2 := d.AddPort("d2", netlist.Input)
	n1 := d.AddNet("n1", drv1)
	n2 := d.AddNet("n2", drv2)
	c := d.AddCell("u", 0, false)
	d.Connect(n1, d.AddPin(c, "A", netlist.Input, false))
	for i := 0; i < 8; i++ {
		d.Connect(n2, d.AddPin(c, "B"+string(rune('0'+i)), netlist.Input, false))
	}
	par := FromFanout(d, DefaultParams(), 7)
	avg := func(n netlist.NetID) float64 {
		var s float64
		for _, b := range par.Nets[n].Branch {
			s += b.Len
		}
		return s / float64(len(par.Nets[n].Branch))
	}
	if avg(n2) <= avg(n1) {
		t.Errorf("fanout-8 avg len %v not above fanout-1 avg len %v", avg(n2), avg(n1))
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	d := twoSinkDesign()
	par := FromPlacement(d, DefaultParams())
	par.Nets[0].Branch = par.Nets[0].Branch[:1]
	if err := par.Validate(d); err == nil {
		t.Error("Validate accepted branch/sink mismatch")
	}
	par = FromPlacement(d, DefaultParams())
	par.Nets = par.Nets[:1]
	if err := par.Validate(d); err == nil {
		t.Error("Validate accepted net count mismatch")
	}
}

func TestWireCap(t *testing.T) {
	d := twoSinkDesign()
	p := DefaultParams()
	par := FromPlacement(d, p)
	var want float64
	for _, b := range par.Nets[0].Branch {
		want += b.C
	}
	if got := par.Nets[0].WireCap(); math.Abs(got-want) > 1e-12 {
		t.Errorf("WireCap = %v, want %v", got, want)
	}
}
