// Package rc models interconnect parasitics and wire delay for the reference
// STA engine: a star RC topology per net, Elmore branch delays, PERI-style
// slew degradation, and a POCV wire-delay sigma. Parasitics can be derived
// either from placement geometry (placement flows) or from fanout-based
// synthetic wirelengths (pre-placement correlation studies).
package rc

import (
	"fmt"
	"math"
	"math/rand"

	"insta/internal/netlist"
	"insta/internal/num"
)

// Params are the technology wire constants.
type Params struct {
	RPerUnit      float64 // wire resistance per unit length, ps/fF/unit
	CPerUnit      float64 // wire capacitance per unit length, fF/unit
	MinLen        float64 // floor wirelength per branch (local routing), units
	WireSigmaFrac float64 // POCV sigma of wire delay as a fraction of its mean
	SlewDegrade   float64 // PERI coefficient: added slew = coeff * wire delay
}

// DefaultParams returns wire constants representative of a dense lower metal
// stack: 1 length unit = 1 placement site. The values are tuned so that an
// average unbuffered block-scale net contributes delay comparable to a gate
// stage (signoff netlists are buffered; these generated ones are not).
func DefaultParams() Params {
	return Params{
		RPerUnit:      0.004,
		CPerUnit:      0.012,
		MinLen:        2,
		WireSigmaFrac: 0.04,
		SlewDegrade:   2.2,
	}
}

// Branch is one driver→sink wire segment of a star net.
type Branch struct {
	Len float64 // routed length, units
	R   float64 // branch resistance, ps/fF
	C   float64 // branch wire capacitance, fF
}

// Net is the parasitic model of one net: independent branches from the driver
// node to each sink (star topology).
type Net struct {
	Branch []Branch // indexed like netlist.Net.Sinks
}

// WireCap returns the total wire capacitance seen by the net's driver.
func (n *Net) WireCap() float64 {
	var c float64
	for i := range n.Branch {
		c += n.Branch[i].C
	}
	return c
}

// Parasitics stores per-net parasitics for a design.
type Parasitics struct {
	Params Params
	Nets   []Net // indexed by netlist.NetID
}

// FromPlacement extracts parasitics from the design's current placement:
// each branch length is the Manhattan distance between driver and sink pin
// positions plus the MinLen local-routing floor.
func FromPlacement(d *netlist.Design, p Params) *Parasitics {
	par := &Parasitics{Params: p, Nets: make([]Net, len(d.Nets))}
	for i := range d.Nets {
		par.RebuildNet(d, netlist.NetID(i))
	}
	return par
}

// RebuildNet refreshes one net's parasitics from current pin positions.
// The placer calls this after moving cells.
func (par *Parasitics) RebuildNet(d *netlist.Design, id netlist.NetID) {
	net := &d.Nets[id]
	dx, dy := d.PinPos(net.Driver)
	branches := par.Nets[id].Branch
	if cap(branches) < len(net.Sinks) {
		branches = make([]Branch, len(net.Sinks))
	}
	branches = branches[:len(net.Sinks)]
	for s, sink := range net.Sinks {
		sx, sy := d.PinPos(sink)
		l := math.Abs(sx-dx) + math.Abs(sy-dy) + par.Params.MinLen
		branches[s] = branchFromLen(par.Params, l)
	}
	par.Nets[id].Branch = branches
}

// FromFanout synthesizes parasitics without placement: branch length grows
// with the net's fanout (bigger nets route farther) plus deterministic
// per-branch jitter from seed. This plays the role of the extracted SPEF the
// reference signoff tool would read.
func FromFanout(d *netlist.Design, p Params, seed int64) *Parasitics {
	rng := rand.New(rand.NewSource(seed))
	par := &Parasitics{Params: p, Nets: make([]Net, len(d.Nets))}
	for i := range d.Nets {
		net := &d.Nets[i]
		fo := float64(len(net.Sinks))
		base := p.MinLen + 8*math.Log1p(fo)
		branches := make([]Branch, len(net.Sinks))
		for s := range net.Sinks {
			l := base * (0.6 + 0.8*rng.Float64())
			branches[s] = branchFromLen(p, l)
		}
		par.Nets[i].Branch = branches
	}
	return par
}

func branchFromLen(p Params, l float64) Branch {
	return Branch{Len: l, R: p.RPerUnit * l, C: p.CPerUnit * l}
}

// BranchDelay returns the Elmore delay distribution of branch s of net id,
// given the sink pin's input capacitance: mean = R*(C/2 + Cpin), sigma =
// WireSigmaFrac * mean.
func (par *Parasitics) BranchDelay(id netlist.NetID, s int, sinkPinCap float64) num.Dist {
	b := par.Nets[id].Branch[s]
	mean := b.R * (b.C/2 + sinkPinCap)
	return num.Dist{Mean: mean, Std: par.Params.WireSigmaFrac * mean}
}

// DegradeSlew returns the sink slew after wire attenuation, PERI-style:
// sqrt(driverSlew^2 + (SlewDegrade*wireDelay)^2).
func (par *Parasitics) DegradeSlew(driverSlew, wireDelayMean float64) float64 {
	return math.Hypot(driverSlew, par.Params.SlewDegrade*wireDelayMean)
}

// Validate checks that every net's branch list matches its sink list.
func (par *Parasitics) Validate(d *netlist.Design) error {
	if len(par.Nets) != len(d.Nets) {
		return fmt.Errorf("rc: %d parasitic nets for %d design nets", len(par.Nets), len(d.Nets))
	}
	for i := range d.Nets {
		if len(par.Nets[i].Branch) != len(d.Nets[i].Sinks) {
			return fmt.Errorf("rc: net %q has %d branches for %d sinks",
				d.Nets[i].Name, len(par.Nets[i].Branch), len(d.Nets[i].Sinks))
		}
		for s, b := range par.Nets[i].Branch {
			if b.R < 0 || b.C < 0 || b.Len < 0 {
				return fmt.Errorf("rc: net %q branch %d has negative parasitics", d.Nets[i].Name, s)
			}
		}
	}
	return nil
}
