package num

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDistAdd(t *testing.T) {
	d := Dist{Mean: 10, Std: 3}.Add(Dist{Mean: 5, Std: 4})
	if d.Mean != 15 {
		t.Errorf("mean = %v, want 15", d.Mean)
	}
	if !almostEqual(d.Std, 5, 1e-12) {
		t.Errorf("std = %v, want 5 (RSS of 3,4)", d.Std)
	}
}

func TestDistCorner(t *testing.T) {
	d := Dist{Mean: 100, Std: 2}
	if got := d.Corner(3); got != 106 {
		t.Errorf("Corner(3) = %v, want 106", got)
	}
	if got := d.EarlyCorner(3); got != 94 {
		t.Errorf("EarlyCorner(3) = %v, want 94", got)
	}
}

func TestDistAddCommutative(t *testing.T) {
	f := func(m1, s1, m2, s2 float64) bool {
		a := Dist{m1, math.Abs(s1)}
		b := Dist{m2, math.Abs(s2)}
		x, y := a.Add(b), b.Add(a)
		return x.Mean == y.Mean && x.Std == y.Std
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRSSMonotone(t *testing.T) {
	f := func(a, b, extra float64) bool {
		a, b, extra = math.Abs(a), math.Abs(b), math.Abs(extra)
		if math.IsInf(a+b+extra, 0) || math.IsNaN(a+b+extra) {
			return true
		}
		return RSS(a, b+extra) >= RSS(a, b)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLSEEmpty(t *testing.T) {
	if got := LSE(nil, 0.1); !math.IsInf(got, -1) {
		t.Errorf("LSE(nil) = %v, want -Inf", got)
	}
}

func TestLSEZeroTauIsMax(t *testing.T) {
	xs := []float64{1, 7, 3, -2}
	if got := LSE(xs, 0); got != 7 {
		t.Errorf("LSE(tau=0) = %v, want 7", got)
	}
}

func TestLSEUpperBoundsMax(t *testing.T) {
	// LSE >= max always; LSE <= max + tau*log(n).
	f := func(a, b, c float64) bool {
		xs := []float64{a, b, c}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
			// Keep magnitudes bounded so exp stays finite.
			xs[i] = math.Mod(xs[i], 1e6)
		}
		tau := 0.5
		m := math.Max(xs[0], math.Max(xs[1], xs[2]))
		l := LSE(xs, tau)
		return l >= m-1e-9 && l <= m+tau*math.Log(3)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLSEConvergesToMax(t *testing.T) {
	xs := []float64{3.0, 2.9, 1.0}
	prev := math.Inf(1)
	for _, tau := range []float64{1, 0.1, 0.01, 0.001} {
		l := LSE(xs, tau)
		if l > prev+1e-12 {
			t.Errorf("LSE not monotone non-increasing in tau: %v then %v", prev, l)
		}
		prev = l
	}
	if !almostEqual(prev, 3.0, 1e-6) {
		t.Errorf("LSE(tau=0.001) = %v, want ~3.0", prev)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		xs := []float64{a, b, c, d}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
			xs[i] = math.Mod(xs[i], 1e4)
		}
		out := make([]float64, 4)
		Softmax(xs, 0.3, out)
		var sum float64
		for _, w := range out {
			if w < 0 || w > 1 {
				return false
			}
			sum += w
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxHardMax(t *testing.T) {
	out := make([]float64, 3)
	Softmax([]float64{1, 5, 2}, 0, out)
	want := []float64{0, 1, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("hard softmax = %v, want %v", out, want)
		}
	}
}

func TestSoftmaxWeightsOrdered(t *testing.T) {
	// Larger input must get at least as much weight.
	xs := []float64{1, 2, 3}
	out := make([]float64, 3)
	Softmax(xs, 0.7, out)
	if !(out[0] < out[1] && out[1] < out[2]) {
		t.Errorf("weights not ordered with inputs: %v", out)
	}
}

func TestSoftmaxMatchesLSEGradient(t *testing.T) {
	// Finite-difference check of Eq. 6 against Eq. 4.
	xs := []float64{1.0, 1.5, 0.5}
	tau := 0.4
	out := make([]float64, 3)
	Softmax(xs, tau, out)
	const h = 1e-6
	for i := range xs {
		up := append([]float64(nil), xs...)
		dn := append([]float64(nil), xs...)
		up[i] += h
		dn[i] -= h
		fd := (LSE(up, tau) - LSE(dn, tau)) / (2 * h)
		if !almostEqual(fd, out[i], 1e-5) {
			t.Errorf("dLSE/dx[%d]: fd=%v softmax=%v", i, fd, out[i])
		}
	}
}

func TestInterp1(t *testing.T) {
	xs := []float64{0, 1, 2}
	fs := []float64{0, 10, 40}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 10}, {0.5, 5}, {1.5, 25},
		{-1, -10}, // left extrapolation
		{3, 70},   // right extrapolation
	}
	for _, c := range cases {
		if got := Interp1(xs, fs, c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Interp1(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestInterp1Degenerate(t *testing.T) {
	if got := Interp1(nil, nil, 5); got != 0 {
		t.Errorf("empty axis: got %v", got)
	}
	if got := Interp1([]float64{2}, []float64{7}, 5); got != 7 {
		t.Errorf("single point: got %v, want 7", got)
	}
}

func TestBilinearExactOnGrid(t *testing.T) {
	xa := []float64{0, 1}
	ya := []float64{0, 2}
	v := [][]float64{{1, 2}, {3, 4}}
	checks := []struct{ x, y, want float64 }{
		{0, 0, 1}, {0, 2, 2}, {1, 0, 3}, {1, 2, 4}, {0.5, 1, 2.5},
	}
	for _, c := range checks {
		if got := Bilinear(xa, ya, v, c.x, c.y); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Bilinear(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestBilinearReproducesPlane(t *testing.T) {
	// A bilinear interpolant reproduces any plane f = a + b*x + c*y exactly,
	// including extrapolation.
	xa := []float64{0, 0.5, 1, 2}
	ya := []float64{0, 1, 3}
	plane := func(x, y float64) float64 { return 2 + 3*x - 0.5*y }
	v := make([][]float64, len(xa))
	for i, x := range xa {
		v[i] = make([]float64, len(ya))
		for j, y := range ya {
			v[i][j] = plane(x, y)
		}
	}
	f := func(x, y float64) bool {
		x = math.Mod(math.Abs(x), 5)
		y = math.Mod(math.Abs(y), 5)
		return almostEqual(Bilinear(xa, ya, v, x, y), plane(x, y), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBilinearDegenerateAxes(t *testing.T) {
	if got := Bilinear(nil, nil, nil, 1, 1); got != 0 {
		t.Errorf("empty: got %v", got)
	}
	got := Bilinear([]float64{1}, []float64{0, 1}, [][]float64{{5, 7}}, 9, 0.5)
	if !almostEqual(got, 6, 1e-12) {
		t.Errorf("1-row table: got %v, want 6", got)
	}
	got = Bilinear([]float64{0, 1}, []float64{2}, [][]float64{{5}, {7}}, 0.5, 9)
	if !almostEqual(got, 6, 1e-12) {
		t.Errorf("1-col table: got %v, want 6", got)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("r = %v, want 1", r)
	}
	for i := range ys {
		ys[i] = -ys[i]
	}
	r, _ = Pearson(xs, ys)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonErrorsAndDegenerate(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if r, _ := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Errorf("short input r = %v, want 0", r)
	}
	if r, _ := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("zero-variance r = %v, want 0", r)
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		sanitize := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		xs := []float64{sanitize(a), sanitize(b), sanitize(c)}
		ys := []float64{sanitize(d), sanitize(e), sanitize(g)}
		r, err := Pearson(xs, ys)
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMismatch(t *testing.T) {
	s, err := Mismatch([]float64{1, 2, 3}, []float64{1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Avg, 1, 1e-12) || s.Worst != 2 {
		t.Errorf("got %+v, want avg 1 worst 2", s)
	}
	if _, err := Mismatch([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	s, _ = Mismatch(nil, nil)
	if s.Avg != 0 || s.Worst != 0 {
		t.Errorf("empty mismatch = %+v, want zeros", s)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
}
