// Package num provides the small numeric kernels shared across the INSTA
// reproduction: Gaussian (POCV) distribution arithmetic, the numerically
// stable Log-Sum-Exp operator and its softmax gradient, bilinear table
// interpolation for NLDM lookups, and summary statistics used by the
// correlation studies.
package num

import (
	"errors"
	"math"
	"sort"
)

// Dist is a Gaussian arrival/delay distribution characterized by its mean and
// standard deviation, the POCV model used throughout the paper (§III-B).
type Dist struct {
	Mean float64
	Std  float64
}

// Add composes two independent Gaussian stages: means add and standard
// deviations combine as root-sum-square (paper Eqs. 1-2).
func (d Dist) Add(e Dist) Dist {
	return Dist{Mean: d.Mean + e.Mean, Std: RSS(d.Std, e.Std)}
}

// Corner returns the pessimistic corner value mean + nSigma*std (paper Eq. 3).
func (d Dist) Corner(nSigma float64) float64 {
	return d.Mean + nSigma*d.Std
}

// EarlyCorner returns the optimistic corner value mean - nSigma*std, used for
// capture-clock arrivals in required-time computation.
func (d Dist) EarlyCorner(nSigma float64) float64 {
	return d.Mean - nSigma*d.Std
}

// RSS returns sqrt(a^2 + b^2). Timing magnitudes (picoseconds) are far from
// float64 overflow, so the direct form is used instead of math.Hypot — this
// sits on the hottest path of both propagation engines.
func RSS(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

// LSE computes the numerically stable Log-Sum-Exp of xs with temperature tau
// (paper Eq. 4): max(xs) + tau*log(sum(exp((x-max)/tau))). For tau <= 0 it
// degenerates to the exact maximum (paper Eq. 5). An empty input returns -Inf.
func LSE(xs []float64, tau float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if tau <= 0 {
		return m
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp((x - m) / tau)
	}
	return m + tau*math.Log(sum)
}

// Softmax writes the LSE gradient weights (paper Eq. 6) of xs at temperature
// tau into out, which must have len(xs). For tau <= 0 the full weight is
// assigned to the (first) maximum, matching the hard-max subgradient. The
// weights always sum to 1 for non-empty input.
func Softmax(xs []float64, tau float64, out []float64) {
	if len(xs) == 0 {
		return
	}
	m := xs[0]
	argmax := 0
	for i, x := range xs[1:] {
		if x > m {
			m = x
			argmax = i + 1
		}
	}
	if tau <= 0 {
		for i := range out {
			out[i] = 0
		}
		out[argmax] = 1
		return
	}
	var sum float64
	for i, x := range xs {
		w := math.Exp((x - m) / tau)
		out[i] = w
		sum += w
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}

// Interp1 linearly interpolates (and extrapolates at the edges) f sampled at
// the strictly increasing axis points xs.
func Interp1(xs, fs []float64, x float64) float64 {
	n := len(xs)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return fs[0]
	}
	// Find the segment [i, i+1] bracketing x, clamped to the end segments so
	// that out-of-range queries extrapolate linearly (NLDM convention).
	i := sort.SearchFloat64s(xs, x) - 1
	if i < 0 {
		i = 0
	}
	if i > n-2 {
		i = n - 2
	}
	t := (x - xs[i]) / (xs[i+1] - xs[i])
	return fs[i] + t*(fs[i+1]-fs[i])
}

// Bilinear interpolates a 2D table values[ix][iy] sampled on (xAxis, yAxis) at
// the query point (x, y), extrapolating linearly beyond the grid edges. This
// mirrors NLDM slew-by-load delay table lookup semantics.
func Bilinear(xAxis, yAxis []float64, values [][]float64, x, y float64) float64 {
	nx, ny := len(xAxis), len(yAxis)
	if nx == 0 || ny == 0 {
		return 0
	}
	if nx == 1 {
		return Interp1(yAxis, values[0], y)
	}
	if ny == 1 {
		col := make([]float64, nx)
		for i := range col {
			col[i] = values[i][0]
		}
		return Interp1(xAxis, col, x)
	}
	i := sort.SearchFloat64s(xAxis, x) - 1
	if i < 0 {
		i = 0
	}
	if i > nx-2 {
		i = nx - 2
	}
	j := sort.SearchFloat64s(yAxis, y) - 1
	if j < 0 {
		j = 0
	}
	if j > ny-2 {
		j = ny - 2
	}
	tx := (x - xAxis[i]) / (xAxis[i+1] - xAxis[i])
	ty := (y - yAxis[j]) / (yAxis[j+1] - yAxis[j])
	f00 := values[i][j]
	f01 := values[i][j+1]
	f10 := values[i+1][j]
	f11 := values[i+1][j+1]
	return f00*(1-tx)*(1-ty) + f10*tx*(1-ty) + f01*(1-tx)*ty + f11*tx*ty
}

// ErrLengthMismatch reports correlation inputs of differing lengths.
var ErrLengthMismatch = errors.New("num: input slices have different lengths")

// Pearson returns the Pearson correlation coefficient of xs and ys.
// It returns 0 for inputs shorter than 2 or with zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	n := len(xs)
	if n < 2 {
		return 0, nil
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MismatchStats describes absolute elementwise differences between a
// reference series and a candidate series (Table I's "(avg, wst)" columns).
type MismatchStats struct {
	Avg   float64
	Worst float64
}

// Mismatch returns the average and worst absolute difference between xs and ys.
func Mismatch(xs, ys []float64) (MismatchStats, error) {
	if len(xs) != len(ys) {
		return MismatchStats{}, ErrLengthMismatch
	}
	var s MismatchStats
	if len(xs) == 0 {
		return s, nil
	}
	for i := range xs {
		d := math.Abs(xs[i] - ys[i])
		s.Avg += d
		if d > s.Worst {
			s.Worst = d
		}
	}
	s.Avg /= float64(len(xs))
	return s, nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Norm2 returns the Euclidean norm of xs.
func Norm2(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}
