package sched

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// coverCheck runs fn over n indices through run and asserts every index is
// processed exactly once.
func coverCheck(t *testing.T, n int, run func(fn func(lo, hi int))) {
	t.Helper()
	marks := make([]int32, n)
	run(func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d processed %d times", i, m)
		}
	}
}

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, grain := range []int{1, 3, 64} {
			for _, n := range []int{0, 1, 2, 63, 64, 65, 1000} {
				p := New(workers, grain)
				coverCheck(t, n, func(fn func(lo, hi int)) { p.Run(n, fn) })
				p.Close()
			}
		}
	}
}

func TestPoolReusedAcrossManyLaunches(t *testing.T) {
	p := New(4, 8)
	defer p.Close()
	var sum atomic.Int64
	const launches, n = 500, 300
	for l := 0; l < launches; l++ {
		p.Run(n, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
	}
	want := int64(launches) * int64(n*(n-1)/2)
	if got := sum.Load(); got != want {
		t.Fatalf("sum over launches = %d, want %d", got, want)
	}
}

func TestSmallLaunchRunsInlineOnCaller(t *testing.T) {
	p := New(4, 64)
	defer p.Close()
	s := NewStats()
	p.SetStats(s)
	done := false
	p.Run(64, func(lo, hi int) { // exactly one chunk: must not go parallel
		if lo != 0 || hi != 64 {
			t.Errorf("expected one inline chunk, got [%d, %d)", lo, hi)
		}
		done = true // safe only because the chunk runs on this goroutine
	})
	if !done {
		t.Fatal("kernel did not run")
	}
	prof := s.Snapshot()
	if len(prof) != 1 || prof[0].SerialLaunches != 1 || prof[0].Launches != 1 {
		t.Fatalf("expected one serial launch, got %+v", prof)
	}
}

func TestSingleWorkerPoolNeverSpawns(t *testing.T) {
	p := New(1, 4)
	defer p.Close()
	before := runtime.NumGoroutine()
	order := make([]int, 0, 4)
	p.Run(16, func(lo, hi int) { order = append(order, lo) }) // no race: caller-only
	if runtime.NumGoroutine() > before {
		t.Error("single-worker pool grew the goroutine count")
	}
	for i, lo := range order {
		if lo != i*4 {
			t.Fatalf("single-worker chunks out of order: %v", order)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(0, 0)
	defer p.Close()
	if p.Workers() != runtime.NumCPU() {
		t.Errorf("Workers() = %d, want NumCPU %d", p.Workers(), runtime.NumCPU())
	}
	if p.Grain() != DefaultGrain {
		t.Errorf("Grain() = %d, want %d", p.Grain(), DefaultGrain)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := New(3, 8)
	p.Close()
	p.Close()
}

func TestStatsAggregation(t *testing.T) {
	p := New(4, 8)
	defer p.Close()
	s := NewStats()
	p.SetStats(s)
	for level := 0; level < 3; level++ {
		p.RunTagged("forward", level, 100, func(lo, hi int) {})
	}
	p.RunTagged("slack", -1, 4, func(lo, hi int) {})
	prof := s.Snapshot()
	if len(prof) != 2 {
		t.Fatalf("expected 2 kernels, got %d", len(prof))
	}
	fwd, slack := prof[0], prof[1]
	if fwd.Kernel != "forward" || slack.Kernel != "slack" {
		t.Fatalf("unexpected kernel order: %s, %s", fwd.Kernel, slack.Kernel)
	}
	if fwd.Launches != 3 || fwd.Spans != 300 {
		t.Errorf("forward launches/spans = %d/%d, want 3/300", fwd.Launches, fwd.Spans)
	}
	if len(fwd.Levels) != 3 {
		t.Errorf("forward level profiles = %d, want 3", len(fwd.Levels))
	}
	for i, lv := range fwd.Levels {
		if lv.Level != i || lv.Spans != 100 || lv.Launches != 1 {
			t.Errorf("level %d profile wrong: %+v", i, lv)
		}
	}
	// Launches only go parallel when the runtime can actually execute more
	// than one participant; on a single-CPU machine the pool runs every
	// launch inline, so the stats record serial launches instead.
	if min(4, runtime.GOMAXPROCS(0)) > 1 {
		if fwd.AvgImbalance < 1 {
			t.Errorf("parallel launches must report imbalance >= 1, got %v", fwd.AvgImbalance)
		}
	} else if fwd.SerialLaunches != 3 {
		t.Errorf("on GOMAXPROCS=1 all launches must be serial, got %d of 3", fwd.SerialLaunches)
	}
	if slack.SerialLaunches != 1 || slack.AvgImbalance != 0 || len(slack.Levels) != 0 {
		t.Errorf("slack profile wrong: %+v", slack)
	}

	s.Reset()
	if got := s.Snapshot(); len(got) != 0 {
		t.Errorf("snapshot after reset not empty: %+v", got)
	}
}

func TestRunIndexedCoversAllIndicesWithValidIDs(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 63, 64, 65, 1000} {
			p := New(workers, 16)
			marks := make([]int32, n)
			p.RunIndexed("", -1, n, func(id, lo, hi int) {
				if id < 0 || id >= workers {
					t.Errorf("participant id %d out of range [0, %d)", id, workers)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("workers=%d n=%d: index %d processed %d times", workers, n, i, m)
				}
			}
			p.Close()
		}
	}
}

// TestRunIndexedIDsDisjointWhileRunning asserts the per-participant-scratch
// contract: no two concurrently running chunks share an id. Each chunk marks
// its id busy on entry and free on exit; an id found busy on entry is a
// contract violation.
func TestRunIndexedIDsDisjointWhileRunning(t *testing.T) {
	const workers = 4
	p := New(workers, 1)
	defer p.Close()
	var busy [workers]atomic.Bool
	for round := 0; round < 50; round++ {
		p.RunIndexed("", -1, 64, func(id, lo, hi int) {
			if !busy[id].CompareAndSwap(false, true) {
				t.Errorf("id %d claimed by two concurrent chunks", id)
			}
			busy[id].Store(false)
		})
	}
}

func TestAutoGrainScalesWithLaunchSize(t *testing.T) {
	p := New(2, 0) // auto mode
	defer p.Close()
	if p.Grain() != DefaultGrain {
		t.Fatalf("auto pool base grain = %d, want %d", p.Grain(), DefaultGrain)
	}
	ip := p.p
	if g := ip.launchGrain(100, 2); g != DefaultGrain {
		t.Errorf("small launch grain = %d, want floor %d", g, DefaultGrain)
	}
	if g := ip.launchGrain(8000, 2); g != 1000 {
		t.Errorf("mid launch grain = %d, want 1000", g)
	}
	if g := ip.launchGrain(1<<20, 2); g != maxAutoGrain {
		t.Errorf("huge launch grain = %d, want cap %d", g, maxAutoGrain)
	}
	fixed := New(2, 8)
	defer fixed.Close()
	if g := fixed.p.launchGrain(1<<20, 2); g != 8 {
		t.Errorf("fixed pool must not auto-tune: grain = %d, want 8", g)
	}
}

func TestSerialCutoffRunsInline(t *testing.T) {
	p := New(4, 0)
	defer p.Close()
	n := p.SerialCutoff()
	next := 0
	p.RunIndexed("", -1, n, func(id, lo, hi int) {
		if id != 0 {
			t.Errorf("cutoff-sized launch used helper id %d", id)
		}
		if lo != next {
			t.Errorf("chunks out of order: lo=%d want %d", lo, next)
		}
		next = hi
	})
	if next != n {
		t.Fatalf("covered %d of %d spans", next, n)
	}
}

func TestSpawnIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{0, 10, 255, 256, 1000} {
			marks := make([]int32, n)
			SpawnIndexed(workers, n, func(id, lo, hi int) {
				if id < 0 || id >= max(workers, 1) {
					t.Errorf("spawn id %d out of range [0, %d)", id, workers)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("workers=%d n=%d: index %d processed %d times", workers, n, i, m)
				}
			}
		}
	}
}

func TestStatsDetachedCostsNothing(t *testing.T) {
	p := New(2, 8)
	defer p.Close()
	s := NewStats()
	p.SetStats(s)
	p.Run(100, func(lo, hi int) {})
	p.SetStats(nil)
	p.Run(100, func(lo, hi int) {})
	prof := s.Snapshot()
	if len(prof) != 1 || prof[0].Launches != 1 {
		t.Fatalf("detached pool still recorded: %+v", prof)
	}
}

func TestWriteTable(t *testing.T) {
	p := New(4, 8)
	defer p.Close()
	s := NewStats()
	p.SetStats(s)
	p.RunTagged("forward", 0, 200, func(lo, hi int) {})
	var sb strings.Builder
	WriteTable(&sb, s.Snapshot(), 3)
	out := sb.String()
	if !strings.Contains(out, "forward") || !strings.Contains(out, "level") {
		t.Errorf("table missing expected rows:\n%s", out)
	}
}

func TestSpawnCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		for _, n := range []int{0, 10, 255, 256, 1000} {
			coverCheck(t, n, func(fn func(lo, hi int)) { Spawn(workers, n, fn) })
		}
	}
}

// TestWorkStealingSurvivesSkew pins most of the cost on the first chunks; the
// claiming loop must still cover everything (a fixed even split would leave
// the caller idle while one worker drags).
func TestWorkStealingSurvivesSkew(t *testing.T) {
	p := New(4, 1)
	defer p.Close()
	var total atomic.Int64
	p.Run(64, func(lo, hi int) {
		if lo < 4 {
			// Simulate a heavy pin: spin a little.
			x := 0
			for i := 0; i < 50000; i++ {
				x += i
			}
			_ = x
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != 64 {
		t.Fatalf("processed %d of 64 indices", total.Load())
	}
}
