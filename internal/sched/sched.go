// Package sched provides the persistent execution layer every INSTA kernel
// dispatches onto: a worker pool created once per engine and reused across
// forward, hold, backward and incremental passes.
//
// The paper's GPU runtime launches one massively parallel kernel per timing
// level, so propagation cost scales with the level count, not the pin count
// (§III-A/§IV-A). The CPU analogue here must not pay a goroutine spawn per
// level per pass — deep-but-narrow graphs launch thousands of kernels per
// propagation — so the pool parks its workers on a channel between launches
// and wakes only as many as a launch has chunks for.
//
// Work is distributed by atomic chunk claiming rather than fixed even splits:
// every participant (the calling goroutine included) repeatedly claims the
// next grain-sized index range until the launch is drained. Uneven per-pin
// cost (Top-K merges vary with fan-in and queue occupancy) therefore cannot
// strand a worker with the slowest fixed share. The grain is tunable and
// doubles as the serial cutoff: a launch with at most one chunk runs inline
// on the caller.
//
// Determinism: the pool never decides *what* a kernel computes, only which
// participant computes which chunk. Kernels that write disjoint state per
// index (all of INSTA's are) produce bit-identical results for any worker
// count and any claiming interleaving.
//
// Concurrency: Run/RunTagged may be called from multiple goroutines at once —
// the serving layer dispatches many what-if sessions onto one shared pool.
// Launches that go parallel serialize on an internal mutex (the pool has one
// in-flight job); launches small enough to run inline on the caller bypass
// the lock entirely, so independent small-cone evaluations proceed fully in
// parallel. Launches must not nest: a kernel body calling back into the same
// pool's Run would deadlock on the launch mutex.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultGrain is the chunk size used when a Pool is created with grain <= 0.
// Each claimed chunk costs one atomic add; INSTA's per-pin kernels are heavy
// enough (Top-K queue merges) that 64 pins amortize it to noise while still
// splitting typical level widths into several claimable pieces.
const DefaultGrain = 64

// Auto-tuning bounds (grain <= 0 at New). A launch is split into roughly
// chunksPerWorker claimable pieces per participant — enough slack for the
// claiming loop to absorb uneven per-pin cost without paying an atomic add
// per handful of pins — and the chunk size is clamped to
// [DefaultGrain, maxAutoGrain] so tiny launches stay inline and huge levels
// still produce bounded chunk descriptors.
const (
	chunksPerWorker = 4
	maxAutoGrain    = 4096
)

// Pool is a handle to a persistent worker pool. Dropping the last reference
// releases the workers automatically (a runtime cleanup closes the pool), so
// holders need not call Close; Close remains available for deterministic
// release and is idempotent.
type Pool struct{ p *pool }

type pool struct {
	workers  int  // max claimers per launch, including the caller
	grain    int  // base chunk size (DefaultGrain when auto)
	auto     bool // grain <= 0 at New: scale the chunk size per launch
	wake     chan struct{} // parked workers block here; buffered workers-1
	launchMu sync.Mutex    // serializes parallel launches from concurrent callers
	job      job
	stats    atomic.Pointer[Stats]
	close    sync.Once
}

// job is the state of the in-flight launch. Run does not return until every
// woken worker is done, so consecutive launches never overlap: the plain
// fields are published to workers by the wake-channel send and retired by the
// WaitGroup before being rewritten.
type job struct {
	fn        func(id, lo, hi int)
	n         int64
	grain     int64
	cursor    atomic.Int64 // next unclaimed index
	nextID    atomic.Int64 // participant ids handed out this launch (caller is 0)
	claimers  atomic.Int64 // participants that processed at least one chunk
	maxChunks atomic.Int64 // most chunks claimed by a single participant
	wg        sync.WaitGroup
}

// New creates a pool with the given worker count and grain size. workers <= 0
// selects runtime.NumCPU(); grain <= 0 selects auto-tuning (DefaultGrain as
// the floor, scaled up per launch so each participant claims roughly
// chunksPerWorker chunks). workers-1 goroutines are spawned immediately and
// parked; the calling goroutine is the remaining participant of every launch.
func New(workers, grain int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	auto := grain <= 0
	if auto {
		grain = DefaultGrain
	}
	p := &pool{
		workers: workers,
		grain:   grain,
		auto:    auto,
		wake:    make(chan struct{}, workers-1),
	}
	for i := 0; i < workers-1; i++ {
		go p.worker()
	}
	h := &Pool{p}
	// Workers reference only the inner pool, so once the handle is
	// unreachable nothing can launch again and the cleanup may park them
	// permanently off.
	runtime.AddCleanup(h, func(ip *pool) { ip.closePool() }, p)
	return h
}

// Workers returns the pool's participant count (workers goroutines plus the
// caller counts as one of them).
func (h *Pool) Workers() int { return h.p.workers }

// Grain returns the chunk size.
func (h *Pool) Grain() int { return h.p.grain }

// SerialCutoff returns the largest launch size guaranteed to run inline on the
// calling goroutine in submission order (one chunk, no helpers, no launch
// mutex). Auto-tuned pools only ever grow the chunk size beyond the base
// grain, so the base grain is a sound bound for both modes. Callers use this
// to fuse work that must stay ordered — e.g. merging consecutive narrow
// levels into one launch — without risking a parallel split.
func (h *Pool) SerialCutoff() int { return h.p.grain }

// SetStats attaches a stats collector recording every subsequent launch; nil
// detaches. Attaching costs two time.Now calls and one mutex acquisition per
// launch; a detached pool records nothing.
func (h *Pool) SetStats(s *Stats) { h.p.stats.Store(s) }

// Stats returns the attached collector, or nil.
func (h *Pool) Stats() *Stats { return h.p.stats.Load() }

// Close releases the pool's workers. Idempotent. Calling Run after Close is a
// bug (it panics on the closed wake channel for parallel launches).
func (h *Pool) Close() { h.p.closePool() }

func (p *pool) closePool() {
	p.close.Do(func() { close(p.wake) })
}

// Run distributes fn over [0, n) and returns when every index has been
// processed exactly once. fn is called with half-open chunk ranges [lo, hi)
// from multiple goroutines concurrently; it must not assume any chunk order.
// Launches at most one chunk long run inline on the caller. Run is safe for
// concurrent use (see the package comment); launches must not nest.
func (h *Pool) Run(n int, fn func(lo, hi int)) {
	h.RunTagged("", -1, n, fn)
}

// RunTagged is Run with instrumentation identity: tag names the kernel and
// level identifies the launch within a pass (-1 when levels are meaningless,
// e.g. endpoint sweeps). The attached Stats collector, if any, aggregates
// spans, chunks, imbalance and wall time under that identity.
func (h *Pool) RunTagged(tag string, level, n int, fn func(lo, hi int)) {
	h.RunIndexed(tag, level, n, func(_, lo, hi int) { fn(lo, hi) })
}

// launchGrain picks the chunk size for a launch of n spans: the configured
// grain, or — for auto-tuned pools — a size that splits the launch into
// roughly chunksPerWorker chunks per participant, clamped to
// [grain, maxAutoGrain]. Bigger chunks on wide levels cut the atomic-claim
// and cache-bounce cost per span without starving the claiming loop of
// stealable work.
func (p *pool) launchGrain(n, participants int) int {
	g := p.grain
	if !p.auto {
		return g
	}
	if target := n / (chunksPerWorker * participants); target > g {
		g = target
		if g > maxAutoGrain {
			g = maxAutoGrain
		}
	}
	return g
}

// RunIndexed is RunTagged with participant identity: fn additionally receives
// the claiming participant's id, a small dense integer in [0, Workers()) that
// is stable for the duration of one chunk and unique across concurrently
// running participants of the launch. Kernels use it to index pre-allocated
// per-participant scratch without allocating inside the launch or paying a
// sync.Pool round-trip per chunk. Ids are NOT stable across chunks of one
// launch (a participant keeps its id while claiming, but which participant
// claims which chunk is nondeterministic) — only disjoint-scratch use is
// sound.
func (h *Pool) RunIndexed(tag string, level, n int, fn func(id, lo, hi int)) {
	p := h.p
	if n <= 0 {
		return
	}
	stats := p.stats.Load()
	var start time.Time
	if stats != nil {
		start = time.Now()
	}
	// Never recruit more participants than the runtime can execute: helpers
	// beyond GOMAXPROCS only add wake/park churn and atomic contention while
	// the claiming loop drains the launch at hardware width anyway. On a
	// single-CPU machine this collapses every launch to the serial inline
	// path, which is exactly the fastest schedule available there.
	participants := p.workers
	if mp := runtime.GOMAXPROCS(0); participants > mp {
		participants = mp
	}
	grain := p.launchGrain(n, participants)
	nchunks := (n + grain - 1) / grain
	helpers := participants - 1
	if helpers > nchunks-1 {
		helpers = nchunks - 1
	}
	if helpers <= 0 {
		fn(0, 0, n)
		if stats != nil {
			stats.record(tag, level, launchRecord{
				spans: int64(n), chunks: 1, claimers: 1, serial: true,
				wall: time.Since(start),
			})
		}
		return
	}
	p.launchMu.Lock()
	defer p.launchMu.Unlock()
	j := &p.job
	j.fn, j.n, j.grain = fn, int64(n), int64(grain)
	j.cursor.Store(0)
	j.nextID.Store(0)
	j.claimers.Store(0)
	j.maxChunks.Store(0)
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.wake <- struct{}{}
	}
	p.runChunks(0)
	j.wg.Wait()
	j.fn = nil
	if stats != nil {
		stats.record(tag, level, launchRecord{
			spans:     int64(n),
			chunks:    int64(nchunks),
			claimers:  j.claimers.Load(),
			maxChunks: j.maxChunks.Load(),
			wall:      time.Since(start),
		})
	}
}

func (p *pool) worker() {
	for range p.wake {
		p.runChunks(int(p.job.nextID.Add(1)))
		p.job.wg.Done()
	}
}

// runChunks claims grain-sized chunks until the launch is drained, then folds
// this participant's claim count into the launch's imbalance counters. id is
// this participant's dense identity for the launch (0 = the caller).
func (p *pool) runChunks(id int) {
	j := &p.job
	n, grain, fn := j.n, j.grain, j.fn
	var claimed int64
	for {
		lo := j.cursor.Add(grain) - grain
		if lo >= n {
			break
		}
		hi := lo + grain
		if hi > n {
			hi = n
		}
		fn(id, int(lo), int(hi))
		claimed++
	}
	if claimed > 0 {
		j.claimers.Add(1)
		for {
			cur := j.maxChunks.Load()
			if claimed <= cur || j.maxChunks.CompareAndSwap(cur, claimed) {
				break
			}
		}
	}
}

// Spawn is the seed scheduling strategy, kept as an ablation baseline: split
// [0, n) into one fixed even chunk per worker and spawn a goroutine for each,
// every launch, with the historical n < 256 serial cliff. Benchmarks compare
// Pool.Run against it so the per-level spawn overhead stays measurable as the
// engine evolves (see BENCH_sched.json).
func Spawn(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n < 256 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SpawnIndexed is Spawn with participant identity: fn receives the chunk's
// index as id. Spawn creates at most workers chunks (one goroutine each), so
// ids are dense in [0, workers) and unique per concurrently running chunk —
// the same per-participant-scratch contract RunIndexed offers.
func SpawnIndexed(workers, n int, fn func(id, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n < 256 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	id := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			fn(id, lo, hi)
		}(id, lo, hi)
		id++
	}
	wg.Wait()
}
