package sched

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Stats aggregates kernel-launch telemetry: per kernel tag it tracks launch
// and span counts, chunk counts, wall time, the share of launches that ran
// inline (serial), and a chunk-imbalance figure; per (kernel, level) it
// tracks launches, spans and wall time, which is the per-level profile the
// paper's level-count scaling argument predicts (§IV-A: runtime tracks the
// number of levels, spans per level set the parallel width).
//
// One collector may be attached to several pools; all methods are safe for
// concurrent use.
type Stats struct {
	mu      sync.Mutex
	kernels map[string]*kernelAgg
}

type kernelAgg struct {
	launches     int64
	serial       int64
	spans        int64
	chunks       int64
	wall         time.Duration
	imbalanceSum float64 // summed over parallel launches
	parallel     int64
	levels       []levelAgg
}

type levelAgg struct {
	launches int64
	spans    int64
	wall     time.Duration
}

type launchRecord struct {
	spans     int64
	chunks    int64
	claimers  int64
	maxChunks int64
	serial    bool
	wall      time.Duration
}

// NewStats returns an empty collector.
func NewStats() *Stats {
	return &Stats{kernels: make(map[string]*kernelAgg)}
}

func (s *Stats) record(tag string, level int, r launchRecord) {
	if tag == "" {
		tag = "(untagged)"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.kernels[tag]
	if k == nil {
		k = &kernelAgg{}
		s.kernels[tag] = k
	}
	k.launches++
	k.spans += r.spans
	k.chunks += r.chunks
	k.wall += r.wall
	if r.serial {
		k.serial++
	} else {
		k.parallel++
		// Imbalance of one launch: the busiest participant's chunk count
		// relative to a perfectly even split over the participants that did
		// any work. 1.0 means perfect balance.
		if r.claimers > 0 {
			even := float64(r.chunks) / float64(r.claimers)
			k.imbalanceSum += float64(r.maxChunks) / even
		}
	}
	if level >= 0 {
		for len(k.levels) <= level {
			k.levels = append(k.levels, levelAgg{})
		}
		lv := &k.levels[level]
		lv.launches++
		lv.spans += r.spans
		lv.wall += r.wall
	}
}

// KernelSpans returns the total index count processed so far under the named
// kernel tag (0 for a tag never launched). It is the cheap point query the
// serving layer and tests use to assert kernel-level properties — e.g. that a
// session evaluation ran only cone-limited overlay kernels and never a full
// forward propagate.
func (s *Stats) KernelSpans(tag string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k := s.kernels[tag]; k != nil {
		return k.spans
	}
	return 0
}

// KernelLaunches returns the launch count recorded under the named tag.
func (s *Stats) KernelLaunches(tag string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k := s.kernels[tag]; k != nil {
		return k.launches
	}
	return 0
}

// Reset discards all recorded telemetry.
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kernels = make(map[string]*kernelAgg)
}

// KernelProfile is one kernel's aggregated telemetry snapshot.
type KernelProfile struct {
	Kernel         string
	Launches       int64
	SerialLaunches int64 // launches that ran inline on the caller
	Spans          int64 // total indices processed
	Chunks         int64 // total chunks claimed (serial launches count 1)
	Wall           time.Duration
	// AvgImbalance averages, over parallel launches, the busiest
	// participant's chunk count relative to an even split; 1.0 is perfectly
	// balanced, 2.0 means the busiest claimer did twice its even share. 0
	// when no launch went parallel.
	AvgImbalance float64
	Levels       []LevelProfile
}

// LevelProfile is the per-level slice of a kernel's telemetry.
type LevelProfile struct {
	Level    int
	Launches int64
	Spans    int64
	Wall     time.Duration
}

// Snapshot returns the current per-kernel profiles, sorted by kernel name.
func (s *Stats) Snapshot() []KernelProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]KernelProfile, 0, len(s.kernels))
	for tag, k := range s.kernels {
		p := KernelProfile{
			Kernel:         tag,
			Launches:       k.launches,
			SerialLaunches: k.serial,
			Spans:          k.spans,
			Chunks:         k.chunks,
			Wall:           k.wall,
		}
		if k.parallel > 0 {
			p.AvgImbalance = k.imbalanceSum / float64(k.parallel)
		}
		for lv, a := range k.levels {
			if a.launches == 0 {
				continue
			}
			p.Levels = append(p.Levels, LevelProfile{
				Level: lv, Launches: a.launches, Spans: a.spans, Wall: a.wall,
			})
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kernel < out[j].Kernel })
	return out
}

// WriteTable renders the profiles as an aligned text table with, per kernel,
// the heaviest levels by wall time (topLevels <= 0 omits the level detail).
func WriteTable(w io.Writer, profiles []KernelProfile, topLevels int) {
	fmt.Fprintf(w, "%-12s %9s %7s %10s %10s %9s %10s\n",
		"kernel", "launches", "serial", "spans", "chunks", "imbal", "wall")
	for _, p := range profiles {
		imbal := "-"
		if p.AvgImbalance > 0 {
			imbal = fmt.Sprintf("%.2f", p.AvgImbalance)
		}
		fmt.Fprintf(w, "%-12s %9d %7d %10d %10d %9s %10s\n",
			p.Kernel, p.Launches, p.SerialLaunches, p.Spans, p.Chunks, imbal,
			p.Wall.Round(time.Microsecond))
		if topLevels <= 0 || len(p.Levels) == 0 {
			continue
		}
		levels := append([]LevelProfile(nil), p.Levels...)
		sort.Slice(levels, func(i, j int) bool { return levels[i].Wall > levels[j].Wall })
		if len(levels) > topLevels {
			levels = levels[:topLevels]
		}
		for _, lv := range levels {
			fmt.Fprintf(w, "  level %-5d %8d %28d %20s\n",
				lv.Level, lv.Launches, lv.Spans, lv.Wall.Round(time.Microsecond))
		}
	}
}
