// Package bench generates the deterministic synthetic designs on which the
// paper's experiments are reproduced: clocked multi-group datapath blocks
// standing in for the industrial 3nm blocks of Table I, IWLS-like presets
// for the sizing study (Table II), and placement designs standing in for the
// ICCAD'15 Superblue suite (Table III). It also builds sizing changelists
// for the incremental-evaluation experiment (Fig. 7).
//
// Every generator is seeded and reproducible. Design shape knobs (group
// count, cone depth/width, cross-group wiring) directly control the
// properties the experiments probe: timing-level count (INSTA runtime),
// startpoint-cone sizes (CPPR/Top-K stress), and reconvergence.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/num"
	"insta/internal/rc"
	"insta/internal/refsta"
	"insta/internal/sdc"
)

// Spec parameterizes one generated block.
type Spec struct {
	Name        string
	Seed        int64
	Tech        liberty.Tech
	Groups      int // clock subtrees / logic islands
	FFsPerGroup int
	Layers      int     // combinational depth per group
	Width       int     // gates per layer per group
	CrossFrac   float64 // fraction of gate inputs wired across groups
	NumPIs      int
	NumPOs      int
	Period      float64 // clock period, ps; see VioFrac
	Uncertainty float64
	// VioFrac, when positive, auto-calibrates the period after generation so
	// that roughly this fraction of endpoints violates (the paper's designs
	// arrive with a modest violation population). Period is then only the
	// starting point of the calibration.
	VioFrac float64
	// ExtraTight subtracts additional picoseconds from the period after
	// VioFrac calibration, pushing the worst paths beyond what gate sizing
	// alone can recover — the regime of the paper's Table II designs.
	ExtraTight float64
	// PeriodScale, when positive, multiplies the period after VioFrac
	// calibration. Placement presets calibrate on the random initial
	// placement but are timed after optimization shrinks wires ~3x, so they
	// scale the period down to keep a violating population post-placement.
	PeriodScale float64
	FalsePaths  int     // random false-path exceptions
	Multicycles int     // random 2-cycle exceptions
	Die         float64 // square die side for random placement, site units
	// Wire overrides the interconnect constants (nil uses rc.DefaultParams).
	// Placement experiments use heavier wires so cell positions matter.
	Wire *rc.Params
}

// Design bundles everything a timing engine needs.
type Design struct {
	D   *netlist.Design
	Lib *liberty.Library
	Con *sdc.Constraints
	Par *rc.Parasitics
}

// rightSize assigns each cell the drive strength matching its output load,
// the way a synthesis flow leaves a netlist. Without this, uniformly random
// drives leave so much upsizing headroom that any sizer trivially closes
// timing, flattening the Table II comparison. A little jitter keeps some
// realistic mis-sizing for the optimizers to find.
func rightSize(d *netlist.Design, lib *liberty.Library, par *rc.Parasitics, rng *rand.Rand) {
	const loadPerX1 = 2.5 // fF one drive unit handles comfortably
	for ci := range d.Cells {
		cell := &d.Cells[ci]
		// Output load: wire cap + sink pin caps of the driven net.
		var load float64
		for _, p := range cell.Pins {
			pin := &d.Pins[p]
			if pin.Dir != netlist.Output || pin.Net == netlist.NoNet {
				continue
			}
			load += par.Nets[pin.Net].WireCap()
			for _, s := range d.Nets[pin.Net].Sinks {
				sp := &d.Pins[s]
				if sp.Cell == netlist.NoCell {
					continue
				}
				lc := lib.Cell(d.Cells[sp.Cell].LibCell)
				load += lc.PinCap[d.LocalPinName(s)]
			}
		}
		ladder := lib.Siblings(cell.LibCell)
		want := load / loadPerX1 * (0.8 + 0.4*rng.Float64())
		best := 0
		for i := range ladder {
			if float64(int(1)<<i) <= want {
				best = i
			}
		}
		cell.LibCell = ladder[best]
		cell.Width = lib.Cell(cell.LibCell).Area
	}
}

// gateKind describes a pickable combinational footprint.
type gateKind struct {
	footprint string
	inputs    int
}

var gateKinds = []gateKind{
	{"INV", 1}, {"BUF", 1},
	{"NAND2", 2}, {"NOR2", 2}, {"XOR2", 2},
	{"AOI21", 3},
}

// Generate builds the block described by spec.
func Generate(spec Spec) (*Design, error) {
	if spec.Groups < 1 || spec.FFsPerGroup < 1 || spec.Layers < 1 || spec.Width < 1 {
		return nil, fmt.Errorf("bench: spec %q has non-positive shape parameters", spec.Name)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	lib := liberty.NewSynthetic(spec.Tech)
	d := netlist.New(spec.Name)

	pickCell := func(fp string) int32 {
		ladder := lib.Footprints[fp]
		return ladder[rng.Intn(len(ladder))]
	}

	// Clock tree: root → one branch per group → per-group leaf spines.
	// Leaves per group are chained so that same-group flops share most of
	// their clock path (strong CPPR credit) while cross-group pairs share
	// only the root.
	ct := netlist.NewClockTree(num.Dist{Mean: 5, Std: 0})
	groupBranch := make([]int32, spec.Groups)
	for g := 0; g < spec.Groups; g++ {
		groupBranch[g] = ct.AddNode(ct.Root(), num.Dist{
			Mean: 25 + 4*rng.Float64(),
			Std:  1.5 + 0.5*rng.Float64(),
		})
	}
	leavesPerGroup := 4
	groupLeaves := make([][]int32, spec.Groups)
	for g := 0; g < spec.Groups; g++ {
		for j := 0; j < leavesPerGroup; j++ {
			groupLeaves[g] = append(groupLeaves[g], ct.AddNode(groupBranch[g], num.Dist{
				Mean: 8 + 2*rng.Float64(),
				Std:  0.6 + 0.3*rng.Float64(),
			}))
		}
	}

	// Flip-flops.
	type ff struct {
		cell     netlist.CellID
		d, cp, q netlist.PinID
	}
	ffs := make([][]ff, spec.Groups)
	for g := 0; g < spec.Groups; g++ {
		for i := 0; i < spec.FFsPerGroup; i++ {
			c := d.AddCell(fmt.Sprintf("g%d_ff%d", g, i), pickCell("DFF"), true)
			dp := d.AddPin(c, "D", netlist.Input, false)
			cp := d.AddPin(c, "CP", netlist.Input, true)
			q := d.AddPin(c, "Q", netlist.Output, false)
			ct.BindSink(cp, groupLeaves[g][i%leavesPerGroup])
			ffs[g] = append(ffs[g], ff{cell: c, d: dp, cp: cp, q: q})
		}
	}
	if err := ct.Finalize(); err != nil {
		return nil, err
	}
	d.Clock = ct

	// Primary IO.
	var pis []netlist.PinID
	for i := 0; i < spec.NumPIs; i++ {
		pis = append(pis, d.AddPort(fmt.Sprintf("pi%d", i), netlist.Input))
	}
	var pos []netlist.PinID
	for i := 0; i < spec.NumPOs; i++ {
		pos = append(pos, d.AddPort(fmt.Sprintf("po%d", i), netlist.Output))
	}

	// Combinational fabric, per group: Layers × Width gates. A gate in layer
	// l draws each input from the previous layer of its own group (or, with
	// CrossFrac probability, a random layer of a random group built so far),
	// and layer 0 draws from flop Q pins and primary inputs.
	type srcPool struct {
		pins []netlist.PinID // driver pins available as inputs
	}
	outputsOf := make([][]srcPool, spec.Groups) // [group][layer]
	for g := range outputsOf {
		outputsOf[g] = make([]srcPool, spec.Layers)
	}
	// Nets are created lazily per driver pin so that multiple gate inputs
	// reuse the same net (real fan-out).
	netOf := make(map[netlist.PinID]netlist.NetID)
	connect := func(drv, sink netlist.PinID) {
		n, ok := netOf[drv]
		if !ok {
			n = d.AddNet(fmt.Sprintf("n%d", drv), drv)
			netOf[drv] = n
		}
		d.Connect(n, sink)
	}

	gateCount := 0
	for g := 0; g < spec.Groups; g++ {
		layer0 := srcPool{}
		for _, f := range ffs[g] {
			layer0.pins = append(layer0.pins, f.q)
		}
		for l := 0; l < spec.Layers; l++ {
			for wI := 0; wI < spec.Width; wI++ {
				kind := gateKinds[rng.Intn(len(gateKinds))]
				c := d.AddCell(fmt.Sprintf("g%d_l%d_u%d", g, l, wI), pickCell(kind.footprint), false)
				var inPins []netlist.PinID
				for in := 0; in < kind.inputs; in++ {
					name := string(rune('A' + in))
					inPins = append(inPins, d.AddPin(c, name, netlist.Input, false))
				}
				y := d.AddPin(c, "Y", netlist.Output, false)
				for _, ip := range inPins {
					var src netlist.PinID
					switch {
					case l == 0 && len(pis) > 0 && rng.Float64() < 0.04:
						src = pis[rng.Intn(len(pis))]
					case l == 0:
						src = layer0.pins[rng.Intn(len(layer0.pins))]
					case rng.Float64() < spec.CrossFrac:
						og := rng.Intn(spec.Groups)
						ol := rng.Intn(l) // an earlier layer (possibly another group)
						pool := outputsOf[og][ol].pins
						if len(pool) == 0 {
							pool = outputsOf[g][l-1].pins
						}
						src = pool[rng.Intn(len(pool))]
					default:
						pool := outputsOf[g][l-1].pins
						src = pool[rng.Intn(len(pool))]
					}
					connect(src, ip)
				}
				outputsOf[g][l].pins = append(outputsOf[g][l].pins, y)
				gateCount++
			}
		}
	}

	// Terminate: every flop D is driven by a final-layer output of its own
	// group; unused gate outputs drive POs when available, otherwise they
	// keep a sink-less stub net (unconstrained dangling logic exists in real
	// blocks too).
	for g := 0; g < spec.Groups; g++ {
		final := outputsOf[g][spec.Layers-1].pins
		for i, f := range ffs[g] {
			connect(final[i%len(final)], f.d)
		}
	}
	poI := 0
	for g := 0; g < spec.Groups; g++ {
		for l := 0; l < spec.Layers; l++ {
			for _, y := range outputsOf[g][l].pins {
				if _, driven := netOf[y]; driven {
					continue
				}
				if poI < len(pos) {
					connect(y, pos[poI])
					poI++
				} else {
					netOf[y] = d.AddNet(fmt.Sprintf("n%d", y), y)
				}
			}
		}
	}
	// Primary inputs never sampled keep stub nets too.
	for _, p := range pis {
		if _, driven := netOf[p]; !driven {
			netOf[p] = d.AddNet(fmt.Sprintf("n%d", p), p)
		}
	}
	// Flop outputs never sampled by the fabric keep stub nets.
	for g := 0; g < spec.Groups; g++ {
		for _, f := range ffs[g] {
			if _, driven := netOf[f.q]; !driven {
				netOf[f.q] = d.AddNet(fmt.Sprintf("n%d", f.q), f.q)
			}
		}
	}
	// Remaining POs must be driven.
	for ; poI < len(pos); poI++ {
		g := rng.Intn(spec.Groups)
		final := outputsOf[g][spec.Layers-1].pins
		connect(final[rng.Intn(len(final))], pos[poI])
	}

	// Random placement on the die.
	die := spec.Die
	if die <= 0 {
		die = 400
	}
	for i := range d.Cells {
		d.Cells[i].X = rng.Float64() * die
		d.Cells[i].Y = rng.Float64() * die
		d.Cells[i].Width = lib.Cell(d.Cells[i].LibCell).Area
	}
	for _, p := range append(append([]netlist.PinID(nil), d.PortIns...), d.PortOuts...) {
		d.Pins[p].X = rng.Float64() * die
		d.Pins[p].Y = rng.Float64() * die
	}

	// Constraints.
	con := sdc.New(sdc.Clock{Name: "clk", Period: spec.Period, Uncertainty: spec.Uncertainty})
	for _, p := range pis {
		con.InputDelay[p] = num.Dist{Mean: 20 + 10*rng.Float64(), Std: 1}
		con.InputSlew[p] = 10 + 5*rng.Float64()
	}
	for _, p := range pos {
		con.OutputDelay[p] = 10 + 10*rng.Float64()
		con.OutputLoad[p] = 1 + 2*rng.Float64()
	}
	for i := 0; i < spec.FalsePaths; i++ {
		lg, cg := rng.Intn(spec.Groups), rng.Intn(spec.Groups)
		lf := ffs[lg][rng.Intn(len(ffs[lg]))]
		cf := ffs[cg][rng.Intn(len(ffs[cg]))]
		con.Exceptions = append(con.Exceptions, sdc.Exception{
			Kind: sdc.FalsePath,
			From: []netlist.PinID{lf.cp},
			To:   []netlist.PinID{cf.d},
		})
	}
	for i := 0; i < spec.Multicycles; i++ {
		lg, cg := rng.Intn(spec.Groups), rng.Intn(spec.Groups)
		lf := ffs[lg][rng.Intn(len(ffs[lg]))]
		cf := ffs[cg][rng.Intn(len(ffs[cg]))]
		con.Exceptions = append(con.Exceptions, sdc.Exception{
			Kind:   sdc.Multicycle,
			From:   []netlist.PinID{lf.cp},
			To:     []netlist.PinID{cf.d},
			Cycles: 2,
		})
	}

	wire := rc.DefaultParams()
	if spec.Wire != nil {
		wire = *spec.Wire
	}
	par := rc.FromPlacement(d, wire)
	rightSize(d, lib, par, rng)
	par = rc.FromPlacement(d, wire) // pin caps changed with the drives
	if err := d.Validate(); err != nil {
		return nil, err
	}
	out := &Design{D: d, Lib: lib, Con: con, Par: par}
	if spec.VioFrac > 0 {
		if err := calibratePeriod(out, spec.VioFrac); err != nil {
			return nil, err
		}
		con.Clock.Period -= spec.ExtraTight
		if spec.PeriodScale > 0 {
			con.Clock.Period *= spec.PeriodScale
		}
	}
	return out, nil
}

// calibratePeriod shifts the clock period so that the (1-frac) slack
// quantile of the generated design sits just below zero.
func calibratePeriod(b *Design, frac float64) error {
	e, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		return err
	}
	slacks := e.EndpointSlacks()
	finite := slacks[:0]
	for _, s := range slacks {
		if !math.IsInf(s, 0) {
			finite = append(finite, s)
		}
	}
	if len(finite) == 0 {
		return fmt.Errorf("bench: %s has no timed endpoints to calibrate", b.D.Name)
	}
	sort.Float64s(finite)
	idx := int(float64(len(finite)) * frac)
	if idx >= len(finite) {
		idx = len(finite) - 1
	}
	b.Con.Clock.Period -= finite[idx] + 1
	return nil
}
