package bench

import (
	"fmt"
	"math"
	"math/rand"

	"insta/internal/liberty"
	"insta/internal/netlist"
	"insta/internal/rc"
)

// BlockSpec returns the generator spec for one of the five Table I blocks.
// The paper's blocks hold 2-4M cells and 6-15M pins; these presets scale
// them ~100x down to fit a single-core CI machine while varying exactly the
// structural knobs the experiments probe: logic depth (block-3 deepest,
// block-5 shallowest), group count, and cross-group wiring.
func BlockSpec(name string) (Spec, error) {
	base := Spec{
		Tech:        liberty.TechN3(),
		CrossFrac:   0.025,
		NumPIs:      64,
		NumPOs:      64,
		Uncertainty: 10,
		FalsePaths:  140,
		Multicycles: 90,
		Die:         250,
		VioFrac:     0.05,
	}
	switch name {
	case "block-1":
		base.Name, base.Seed = "block-1", 101
		base.Groups, base.FFsPerGroup = 16, 96
		base.Layers, base.Width = 25, 90
		base.Period = 3000
	case "block-2":
		base.Name, base.Seed = "block-2", 102
		base.Groups, base.FFsPerGroup = 8, 120
		base.Layers, base.Width = 18, 62
		base.Period = 2200
	case "block-3":
		base.Name, base.Seed = "block-3", 103
		base.Groups, base.FFsPerGroup = 10, 96
		base.Layers, base.Width = 30, 55
		base.Period = 3400
	case "block-4":
		base.Name, base.Seed = "block-4", 104
		base.Groups, base.FFsPerGroup = 9, 100
		base.Layers, base.Width = 22, 58
		base.Period = 2400
	case "block-5":
		base.Name, base.Seed = "block-5", 105
		base.Groups, base.FFsPerGroup = 8, 120
		base.Layers, base.Width = 15, 75
		base.Period = 1800
	default:
		return Spec{}, fmt.Errorf("bench: unknown block %q", name)
	}
	return base, nil
}

// BlockNames lists the Table I correlation blocks.
func BlockNames() []string {
	return []string{"block-1", "block-2", "block-3", "block-4", "block-5"}
}

// IWLSSpec returns the generator spec for one of the Table II IWLS-like
// designs in the ASAP7-like technology, with pin counts tracking the paper's
// (aes_core 24k, cipher_top 50k, des 11k, mc_top 35k).
func IWLSSpec(name string) (Spec, error) {
	base := Spec{
		Tech:        liberty.TechASAP7(),
		CrossFrac:   0.08,
		NumPIs:      32,
		NumPOs:      32,
		Uncertainty: 12,
		FalsePaths:  8,
		Multicycles: 4,
		Die:         300,
		VioFrac:     0.1,
		ExtraTight:  380,
	}
	switch name {
	case "aes_core":
		base.Name, base.Seed = "aes_core", 201
		base.Groups, base.FFsPerGroup = 6, 90
		base.Layers, base.Width = 14, 56
		base.Period = 4000
	case "cipher_top":
		base.Name, base.Seed = "cipher_top", 202
		base.Groups, base.FFsPerGroup = 8, 110
		base.Layers, base.Width = 18, 78
		base.Period = 5200
	case "des":
		base.Name, base.Seed = "des", 203
		base.Groups, base.FFsPerGroup = 4, 70
		base.Layers, base.Width = 11, 32
		base.Period = 3000
	case "mc_top":
		base.Name, base.Seed = "mc_top", 204
		base.Groups, base.FFsPerGroup = 7, 100
		base.Layers, base.Width = 15, 62
		base.Period = 4100
	default:
		return Spec{}, fmt.Errorf("bench: unknown IWLS design %q", name)
	}
	return base, nil
}

// IWLSNames lists the Table II designs.
func IWLSNames() []string {
	return []string{"aes_core", "cipher_top", "des", "mc_top"}
}

// Resize is one changelist entry: swap cell Cell to library cell NewLib.
type Resize struct {
	Cell   netlist.CellID
	NewLib int32
}

// Batch is one sizing iteration's worth of committed gate-size changes.
type Batch []Resize

// BatchedChangelist builds a deterministic sequence of sizing iterations,
// each committing batch gate-size changes across the design — the workload
// of the Fig. 7 incremental-evaluation comparison (a commercial
// power-recovery pass touches many cells per iteration).
func BatchedChangelist(b *Design, seed int64, iterations, batch int) []Batch {
	flat := Changelist(b, seed, iterations*batch)
	var out []Batch
	for len(flat) >= batch {
		out = append(out, Batch(flat[:batch]))
		flat = flat[batch:]
	}
	return out
}

// Changelist builds a deterministic sequence of n gate-size changes over the
// design's combinational cells (one drive step up or down, clamped), the
// workload of the Fig. 7 incremental-evaluation comparison.
func Changelist(b *Design, seed int64, n int) []Resize {
	rng := rand.New(rand.NewSource(seed))
	var comb []netlist.CellID
	for i := range b.D.Cells {
		if !b.D.Cells[i].Seq {
			comb = append(comb, netlist.CellID(i))
		}
	}
	var out []Resize
	for len(out) < n && len(comb) > 0 {
		c := comb[rng.Intn(len(comb))]
		delta := 1
		if rng.Float64() < 0.4 {
			delta = -1
		}
		nl, ok := b.Lib.Resize(b.D.Cells[c].LibCell, delta)
		if !ok {
			nl, ok = b.Lib.Resize(b.D.Cells[c].LibCell, -delta)
		}
		if !ok {
			continue
		}
		out = append(out, Resize{Cell: c, NewLib: nl})
	}
	return out
}

// placementWire returns wire constants heavy enough that cell positions
// dominate path delay — the regime timing-driven placement operates in.
func placementWire() *rc.Params {
	return &rc.Params{
		RPerUnit:      0.3,
		CPerUnit:      0.3,
		MinLen:        2,
		WireSigmaFrac: 0.04,
		SlewDegrade:   2.2,
	}
}

// SuperblueSpec returns the generator spec for one of the Table III
// placement benchmarks. The ICCAD'15 Superblue designs (up to 5.6M pins)
// scale here to 2-9k cells; relative size ordering follows the suite
// (superblue10 largest, superblue18 smallest).
func SuperblueSpec(name string) (Spec, error) {
	base := Spec{
		Tech:        liberty.TechN3(),
		CrossFrac:   0.05,
		NumPIs:      48,
		NumPOs:      48,
		Uncertainty: 10,
		FalsePaths:  6,
		Multicycles: 4,
		Wire:        placementWire(),
		VioFrac:     0.12,
		PeriodScale: 0.42,
	}
	type shape struct {
		seed                       int64
		groups, ffs, layers, width int
		period                     float64
	}
	shapes := map[string]shape{
		"superblue1":  {301, 6, 60, 10, 45, 2600},
		"superblue3":  {303, 6, 55, 11, 42, 2700},
		"superblue4":  {304, 5, 50, 9, 40, 2300},
		"superblue5":  {305, 6, 60, 12, 40, 2900},
		"superblue7":  {307, 7, 65, 11, 48, 2800},
		"superblue10": {310, 8, 70, 13, 55, 3200},
		"superblue16": {316, 5, 55, 10, 44, 2500},
		"superblue18": {318, 4, 45, 9, 36, 2200},
	}
	sh, ok := shapes[name]
	if !ok {
		return Spec{}, fmt.Errorf("bench: unknown placement benchmark %q", name)
	}
	base.Name, base.Seed = name, sh.seed
	base.Groups, base.FFsPerGroup = sh.groups, sh.ffs
	base.Layers, base.Width = sh.layers, sh.width
	base.Period = sh.period
	// Spread the initial random placement over roughly the placement
	// region the placer will compute (total area / 0.9 target density), so
	// the period calibration happens at representative wire spans.
	cells := float64(sh.groups * (sh.ffs + sh.layers*sh.width))
	base.Die = math.Sqrt(cells * 6.0 / 0.65)
	return base, nil
}

// SuperblueNames lists the Table III placement benchmarks in the paper's
// order.
func SuperblueNames() []string {
	return []string{
		"superblue1", "superblue3", "superblue4", "superblue5",
		"superblue7", "superblue10", "superblue16", "superblue18",
	}
}
