package bench

import "fmt"

// ChipWire is one top-level interconnect net of a stitched chip: it drives
// boundary output FromPort of instance FromInst into boundary input ToPort
// of instance ToInst with a POCV wire delay. Ports index the blocks'
// boundary lists (inputs = primary-input startpoints, outputs = primary
// outputs), in order.
type ChipWire struct {
	FromInst, FromPort int
	ToInst, ToPort     int
	Mean, Std          float64
}

// ChipSpec is a multi-block stitched preset: block preset names (one per
// instance) plus deterministic top-level interconnect. The same spec feeds
// both the flattened and the hierarchical analysis paths.
type ChipSpec struct {
	Name   string
	Blocks []string
	Wires  []ChipWire
}

// chipWires wires instance i's outputs into instance i+1's inputs,
// feed-forward only (so stitching can never create a combinational loop):
// wiresPerPair of the nPorts boundary ports per adjacent pair, with
// deterministic pseudo-random source ports and wire delays.
func chipWires(instances, wiresPerPair, nPorts int) []ChipWire {
	var out []ChipWire
	for i := 0; i+1 < instances; i++ {
		for j := 0; j < wiresPerPair; j++ {
			out = append(out, ChipWire{
				FromInst: i, FromPort: (j*7 + i) % nPorts,
				ToInst: i + 1, ToPort: j,
				Mean: 24 + float64((i*7+j*13)%37),
				Std:  1 + 0.25*float64((i+j)%5),
			})
		}
	}
	return out
}

// ChipSpecByName returns one of the stitched chip presets: chip-2x (two des
// instances), chip-4x and chip-16x (four / sixteen block-5 instances). All
// instances of a chip share one block preset, so a block compiles and
// extracts once no matter how many times it is instantiated.
func ChipSpecByName(name string) (ChipSpec, error) {
	switch name {
	case "chip-2x":
		return ChipSpec{
			Name:   "chip-2x",
			Blocks: []string{"des", "des"},
			Wires:  chipWires(2, 24, 32),
		}, nil
	case "chip-4x":
		return ChipSpec{
			Name:   "chip-4x",
			Blocks: []string{"block-5", "block-5", "block-5", "block-5"},
			Wires:  chipWires(4, 48, 64),
		}, nil
	case "chip-16x":
		blocks := make([]string, 16)
		for i := range blocks {
			blocks[i] = "block-5"
		}
		return ChipSpec{
			Name:   "chip-16x",
			Blocks: blocks,
			Wires:  chipWires(16, 48, 64),
		}, nil
	default:
		return ChipSpec{}, fmt.Errorf("bench: unknown chip %q", name)
	}
}

// ChipNames lists the stitched chip presets, smallest first.
func ChipNames() []string {
	return []string{"chip-2x", "chip-4x", "chip-16x"}
}

// ChipBlockSpec resolves a chip instance's block preset name against the
// Table I blocks and then the Table II IWLS designs.
func ChipBlockSpec(name string) (Spec, error) {
	if s, err := BlockSpec(name); err == nil {
		return s, nil
	}
	return IWLSSpec(name)
}
