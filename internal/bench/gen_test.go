package bench

import (
	"testing"

	"insta/internal/liberty"
)

// tinySpec is a fast spec for unit tests.
func tinySpec(seed int64) Spec {
	return Spec{
		Name: "tiny", Seed: seed, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 6, Layers: 4, Width: 6,
		CrossFrac: 0.1, NumPIs: 3, NumPOs: 3,
		Period: 900, Uncertainty: 10, FalsePaths: 2, Multicycles: 1,
		Die: 100,
	}
}

func TestGenerateValidDesign(t *testing.T) {
	b, err := Generate(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.D.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Par.Validate(b.D); err != nil {
		t.Fatal(err)
	}
	if err := b.Lib.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.D.NumCells() < 2*6+2*4*6 {
		t.Errorf("too few cells: %d", b.D.NumCells())
	}
	if b.D.Clock == nil {
		t.Fatal("no clock tree")
	}
	if len(b.Con.Exceptions) != 3 {
		t.Errorf("exceptions = %d, want 3", len(b.Con.Exceptions))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinySpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.D.NumPins() != b.D.NumPins() || a.D.NumCells() != b.D.NumCells() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.D.Cells {
		if a.D.Cells[i].LibCell != b.D.Cells[i].LibCell || a.D.Cells[i].X != b.D.Cells[i].X {
			t.Fatalf("cell %d differs across identical seeds", i)
		}
	}
	c, err := Generate(tinySpec(8))
	if err != nil {
		t.Fatal(err)
	}
	same := c.D.NumPins() == a.D.NumPins()
	if same {
		diff := false
		for i := range a.D.Cells {
			if a.D.Cells[i].LibCell != c.D.Cells[i].LibCell {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical designs (suspicious)")
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	s := tinySpec(1)
	s.Groups = 0
	if _, err := Generate(s); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestBlockSpecs(t *testing.T) {
	for _, name := range BlockNames() {
		spec, err := BlockSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name || spec.Period <= 0 {
			t.Errorf("%s: bad spec %+v", name, spec)
		}
	}
	if _, err := BlockSpec("block-99"); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestIWLSSpecs(t *testing.T) {
	for _, name := range IWLSNames() {
		spec, err := IWLSSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Tech.Name != "asap7-synthetic" {
			t.Errorf("%s: tech = %s, want asap7-synthetic", name, spec.Tech.Name)
		}
	}
	if _, err := IWLSSpec("nope"); err == nil {
		t.Error("unknown IWLS design accepted")
	}
}

func TestChangelist(t *testing.T) {
	b, err := Generate(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	cl := Changelist(b, 42, 25)
	if len(cl) != 25 {
		t.Fatalf("changelist length = %d, want 25", len(cl))
	}
	for i, r := range cl {
		if b.D.Cells[r.Cell].Seq {
			t.Errorf("entry %d resizes a flop", i)
		}
		oldFP := b.Lib.Cell(b.D.Cells[r.Cell].LibCell).Footprint
		newFP := b.Lib.Cell(r.NewLib).Footprint
		if oldFP != newFP {
			t.Errorf("entry %d crosses footprints %s -> %s", i, oldFP, newFP)
		}
	}
	cl2 := Changelist(b, 42, 25)
	for i := range cl {
		if cl[i] != cl2[i] {
			t.Fatal("changelist not deterministic")
		}
	}
}
