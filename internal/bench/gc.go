package bench

// GC/allocation measurement for the serving steady state. The engine's
// serving claim is not just throughput — it is that the hot read and
// preview paths allocate nothing per operation once warm, so the Go
// collector has nothing to chase and tail latency stays flat. This file is
// the instrument that turns that claim into numbers: a latency recorder
// that itself allocates nothing per sample, and a probe that diffs the
// runtime's allocator and GC counters (including the /gc/pauses:seconds
// histogram) around a closed-loop load phase. bench_gc_test.go drives it
// and writes BENCH_gc.json; ci.sh gates the result under INSTA_GC_GATE=1.

import (
	"math"
	"runtime"
	"runtime/metrics"
	"sort"
	"time"
)

// LatencyRecorder accumulates per-op latencies into a preallocated buffer,
// so recording inside the measured loop adds no allocations of its own.
// Samples past the capacity are dropped and counted, not grown into — a
// recorder that reallocates mid-load would pollute the numbers it reports.
type LatencyRecorder struct {
	ns      []int64
	dropped int
	sorted  bool
}

// NewLatencyRecorder preallocates space for capacity samples.
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	return &LatencyRecorder{ns: make([]int64, 0, capacity)}
}

// Record adds one sample; past capacity it is counted as dropped.
func (r *LatencyRecorder) Record(d time.Duration) {
	if len(r.ns) == cap(r.ns) {
		r.dropped++
		return
	}
	r.ns = append(r.ns, d.Nanoseconds())
	r.sorted = false
}

// Count returns the number of retained samples.
func (r *LatencyRecorder) Count() int { return len(r.ns) }

// Dropped returns how many samples exceeded the preallocated capacity.
func (r *LatencyRecorder) Dropped() int { return r.dropped }

// QuantileUs returns the q-th latency quantile (upper rank) in microseconds,
// or 0 with no samples. The first call after recording sorts in place.
func (r *LatencyRecorder) QuantileUs(q float64) int64 {
	if len(r.ns) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.ns, func(i, j int) bool { return r.ns[i] < r.ns[j] })
		r.sorted = true
	}
	i := int(q * float64(len(r.ns)))
	if i >= len(r.ns) {
		i = len(r.ns) - 1
	}
	return r.ns[i] / 1e3
}

// Merge folds other's samples (and drop count) into r — the reduction step
// for per-worker recorders, which keep the measured loop lock-free. Samples
// past r's remaining capacity are counted as dropped, matching Record.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	for _, ns := range other.ns {
		if len(r.ns) == cap(r.ns) {
			r.dropped++
			continue
		}
		r.ns = append(r.ns, ns)
	}
	r.dropped += other.dropped
	r.sorted = false
}

// gcSnap is one point-in-time view of the allocator and collector.
type gcSnap struct {
	mallocs    uint64
	totalAlloc uint64
	numGC      uint32
	pauses     *metrics.Float64Histogram
}

func takeSnap() gcSnap {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sample := make([]metrics.Sample, 1)
	sample[0].Name = "/gc/pauses:seconds"
	metrics.Read(sample)
	s := gcSnap{mallocs: ms.Mallocs, totalAlloc: ms.TotalAlloc, numGC: ms.NumGC}
	if sample[0].Value.Kind() == metrics.KindFloat64Histogram {
		s.pauses = sample[0].Value.Float64Histogram()
	}
	return s
}

// GCProbe brackets a measured load phase: StartGCProbe before the loop,
// Report after it. The snapshots use ReadMemStats (a stop-the-world point),
// so take them at phase boundaries, never inside the measured loop.
type GCProbe struct {
	start  gcSnap
	wall   time.Time
	forced int
}

// StartGCProbe runs a collection to settle warmup garbage, then snapshots
// the allocator state and starts the wall clock.
func StartGCProbe() *GCProbe {
	runtime.GC()
	return &GCProbe{start: takeSnap(), wall: time.Now()}
}

// ForceGC triggers a collection inside the load phase and counts it, so a
// workload too allocation-free to ever trip the pacer still exhibits — and
// gets charged for — real GC pauses in the report.
func (p *GCProbe) ForceGC() {
	runtime.GC()
	p.forced++
}

// GCReport is the probe's verdict over one load phase, serialized into
// BENCH_gc.json.
type GCReport struct {
	Ops            int     `json:"ops"`
	WallMS         float64 `json:"wall_ms"`
	OpsPerSec      float64 `json:"ops_per_sec"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	AllocKBPerOp   float64 `json:"alloc_kb_per_op"`
	AllocRateMBps  float64 `json:"alloc_rate_mb_per_s"`
	NumGC          uint32  `json:"num_gc"`
	ForcedGC       int     `json:"forced_gc"`
	MaxPauseUs     float64 `json:"max_pause_us"`
	P50Us          int64   `json:"p50_us"`
	P99Us          int64   `json:"p99_us"`
	P999Us         int64   `json:"p999_us"`
	DroppedSamples int     `json:"dropped_samples,omitempty"`
}

// Report diffs the allocator state against the start snapshot and folds in
// the recorded per-op latencies. ops is how many operations the load loop
// completed.
func (p *GCProbe) Report(ops int, lat *LatencyRecorder) GCReport {
	wall := time.Since(p.wall)
	end := takeSnap()
	rep := GCReport{
		Ops:      ops,
		WallMS:   float64(wall.Nanoseconds()) / 1e6,
		NumGC:    end.numGC - p.start.numGC,
		ForcedGC: p.forced,
	}
	if wall > 0 {
		rep.OpsPerSec = float64(ops) / wall.Seconds()
		rep.AllocRateMBps = float64(end.totalAlloc-p.start.totalAlloc) / 1e6 / wall.Seconds()
	}
	if ops > 0 {
		rep.AllocsPerOp = float64(end.mallocs-p.start.mallocs) / float64(ops)
		rep.AllocKBPerOp = float64(end.totalAlloc-p.start.totalAlloc) / 1e3 / float64(ops)
	}
	rep.MaxPauseUs = maxPauseUs(p.start.pauses, end.pauses)
	if lat != nil {
		rep.P50Us = lat.QuantileUs(0.50)
		rep.P99Us = lat.QuantileUs(0.99)
		rep.P999Us = lat.QuantileUs(0.999)
		rep.DroppedSamples = lat.Dropped()
	}
	return rep
}

// maxPauseUs returns the upper bound of the highest /gc/pauses:seconds
// bucket that gained counts between the two snapshots, in microseconds.
// Bucket boundaries are runtime-fixed, so the diff is positional; the
// open-ended top bucket falls back to its lower bound.
func maxPauseUs(before, after *metrics.Float64Histogram) float64 {
	if after == nil {
		return 0
	}
	for i := len(after.Counts) - 1; i >= 0; i-- {
		n := after.Counts[i]
		if before != nil && i < len(before.Counts) {
			n -= before.Counts[i]
		}
		if n == 0 {
			continue
		}
		hi := after.Buckets[i+1]
		if math.IsInf(hi, 1) {
			hi = after.Buckets[i]
		}
		return hi * 1e6
	}
	return 0
}
