// Package libertyio reads and writes the Liberty (.lib) subset this
// reproduction uses: NLDM cell_rise/cell_fall delay and transition tables
// with inline indices, POCV sigma tables via the ocv_sigma_cell_* extension
// groups PrimeTime's POCV flow uses, pin capacitances, unateness, flip-flop
// groups with setup/hold constraint tables, leakage, area and
// cell_footprint attributes (which carry the sizing ladders).
package libertyio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"insta/internal/liberty"
)

// Write emits lib as Liberty text.
func Write(w io.Writer, lib *liberty.Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", lib.Name)
	fmt.Fprintf(bw, "  time_unit : \"1ps\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(bw, "  delay_model : table_lookup;\n")

	for _, c := range lib.Cells {
		writeCell(bw, c)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func writeCell(bw *bufio.Writer, c *liberty.Cell) {
	fmt.Fprintf(bw, "  cell (%s) {\n", c.Name)
	fmt.Fprintf(bw, "    cell_footprint : \"%s\";\n", c.Footprint)
	fmt.Fprintf(bw, "    area : %.17g;\n", c.Area)
	fmt.Fprintf(bw, "    cell_leakage_power : %.17g;\n", c.Leakage)
	if c.Seq {
		fmt.Fprintf(bw, "    ff (IQ, IQN) {\n")
		fmt.Fprintf(bw, "      clocked_on : \"%s\";\n", c.ClockPin)
		fmt.Fprintf(bw, "      next_state : \"%s\";\n", c.DataPin)
		fmt.Fprintf(bw, "    }\n")
	}
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "    pin (%s) {\n", in)
		fmt.Fprintf(bw, "      direction : input;\n")
		fmt.Fprintf(bw, "      capacitance : %.17g;\n", c.PinCap[in])
		if c.Seq && in == c.ClockPin {
			fmt.Fprintf(bw, "      clock : true;\n")
		}
		if c.Seq && in == c.DataPin {
			writeConstraint(bw, "setup_rising", c.ClockPin, c.Setup)
			writeConstraint(bw, "hold_rising", c.ClockPin, c.Hold)
		}
		fmt.Fprintf(bw, "    }\n")
	}
	for _, out := range c.Outputs {
		fmt.Fprintf(bw, "    pin (%s) {\n", out)
		fmt.Fprintf(bw, "      direction : output;\n")
		for i := range c.Arcs {
			a := &c.Arcs[i]
			if a.To != out {
				continue
			}
			fmt.Fprintf(bw, "      timing () {\n")
			fmt.Fprintf(bw, "        related_pin : \"%s\";\n", a.From)
			fmt.Fprintf(bw, "        timing_sense : %s;\n", a.Sense)
			writeTable(bw, "cell_rise", &a.Delay[liberty.Rise])
			writeTable(bw, "rise_transition", &a.OutSlew[liberty.Rise])
			writeTable(bw, "ocv_sigma_cell_rise", &a.Sigma[liberty.Rise])
			writeTable(bw, "cell_fall", &a.Delay[liberty.Fall])
			writeTable(bw, "fall_transition", &a.OutSlew[liberty.Fall])
			writeTable(bw, "ocv_sigma_cell_fall", &a.Sigma[liberty.Fall])
			fmt.Fprintf(bw, "      }\n")
		}
		fmt.Fprintf(bw, "    }\n")
	}
	fmt.Fprintf(bw, "  }\n")
}

func writeConstraint(bw *bufio.Writer, timingType, clockPin string, vals [2]float64) {
	fmt.Fprintf(bw, "      timing () {\n")
	fmt.Fprintf(bw, "        related_pin : \"%s\";\n", clockPin)
	fmt.Fprintf(bw, "        timing_type : %s;\n", timingType)
	fmt.Fprintf(bw, "        rise_constraint (scalar) { values (\"%.17g\"); }\n", vals[liberty.Rise])
	fmt.Fprintf(bw, "        fall_constraint (scalar) { values (\"%.17g\"); }\n", vals[liberty.Fall])
	fmt.Fprintf(bw, "      }\n")
}

func writeTable(bw *bufio.Writer, group string, t *liberty.Table) {
	fmt.Fprintf(bw, "        %s (delay_template) {\n", group)
	fmt.Fprintf(bw, "          index_1 (\"%s\");\n", joinFloats(t.Slew))
	fmt.Fprintf(bw, "          index_2 (\"%s\");\n", joinFloats(t.Load))
	fmt.Fprintf(bw, "          values ( \\\n")
	for i, row := range t.Val {
		sep := ", \\"
		if i == len(t.Val)-1 {
			sep = " \\"
		}
		fmt.Fprintf(bw, "            \"%s\"%s\n", joinFloats(row), sep)
	}
	fmt.Fprintf(bw, "          );\n")
	fmt.Fprintf(bw, "        }\n")
}

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.17g", x)
	}
	return strings.Join(parts, ", ")
}
