package libertyio

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"

	"insta/internal/liberty"
)

// group is one parsed Liberty group: `name (args) { attrs... subgroups... }`.
type group struct {
	name string
	args []string
	// attrs holds simple (`key : value;`) and complex (`key (v1, v2);`)
	// attributes; complex attribute values keep their argument list.
	attrs map[string][]string
	subs  []*group
}

func (g *group) attr(key string) string {
	if vs, ok := g.attrs[key]; ok && len(vs) > 0 {
		return vs[0]
	}
	return ""
}

func (g *group) subsNamed(name string) []*group {
	var out []*group
	for _, s := range g.subs {
		if s.name == name {
			out = append(out, s)
		}
	}
	return out
}

// Read parses Liberty text written by Write back into a Library. Footprint
// sizing ladders are reconstructed by grouping on cell_footprint and
// ordering by area.
func Read(r io.Reader) (*liberty.Library, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks, err := tokenize(string(data))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if root.name != "library" || len(root.args) != 1 {
		return nil, fmt.Errorf("libertyio: top-level group is %q, want library(name)", root.name)
	}

	var cells []*liberty.Cell
	for _, cg := range root.subsNamed("cell") {
		c, err := parseCell(cg)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("libertyio: library %q has no cells", root.args[0])
	}
	lib := liberty.Rebuild(root.args[0], cells)
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("libertyio: parsed library invalid: %w", err)
	}
	return lib, nil
}

func parseCell(cg *group) (*liberty.Cell, error) {
	if len(cg.args) != 1 {
		return nil, fmt.Errorf("libertyio: cell group without name")
	}
	c := &liberty.Cell{
		Name:      cg.args[0],
		Footprint: strings.Trim(cg.attr("cell_footprint"), `"`),
		PinCap:    map[string]float64{},
	}
	if c.Footprint == "" {
		return nil, fmt.Errorf("libertyio: cell %s lacks cell_footprint", c.Name)
	}
	var err error
	if c.Area, err = parseFloatAttr(cg, "area"); err != nil {
		return nil, fmt.Errorf("libertyio: cell %s: %w", c.Name, err)
	}
	c.Leakage, _ = parseFloatAttr(cg, "cell_leakage_power")

	for _, ff := range cg.subsNamed("ff") {
		c.Seq = true
		c.ClockPin = strings.Trim(ff.attr("clocked_on"), `"`)
		c.DataPin = strings.Trim(ff.attr("next_state"), `"`)
	}

	for _, pg := range cg.subsNamed("pin") {
		if len(pg.args) != 1 {
			return nil, fmt.Errorf("libertyio: cell %s: pin group without name", c.Name)
		}
		pin := pg.args[0]
		switch pg.attr("direction") {
		case "input":
			c.Inputs = append(c.Inputs, pin)
			cap, err := parseFloatAttr(pg, "capacitance")
			if err != nil {
				return nil, fmt.Errorf("libertyio: cell %s pin %s: %w", c.Name, pin, err)
			}
			c.PinCap[pin] = cap
			for _, tg := range pg.subsNamed("timing") {
				if err := parseConstraint(c, tg); err != nil {
					return nil, fmt.Errorf("libertyio: cell %s pin %s: %w", c.Name, pin, err)
				}
			}
		case "output":
			c.Outputs = append(c.Outputs, pin)
			c.OutPin = pin
			for _, tg := range pg.subsNamed("timing") {
				arc, err := parseArc(pin, tg)
				if err != nil {
					return nil, fmt.Errorf("libertyio: cell %s pin %s: %w", c.Name, pin, err)
				}
				c.Arcs = append(c.Arcs, *arc)
			}
		default:
			return nil, fmt.Errorf("libertyio: cell %s pin %s: bad direction %q", c.Name, pin, pg.attr("direction"))
		}
	}
	if !c.Seq {
		c.OutPin = ""
	}
	return c, nil
}

func parseConstraint(c *liberty.Cell, tg *group) error {
	tt := tg.attr("timing_type")
	if tt != "setup_rising" && tt != "hold_rising" {
		return fmt.Errorf("unsupported timing_type %q on input pin", tt)
	}
	rise, err := parseScalarTable(tg, "rise_constraint")
	if err != nil {
		return err
	}
	fall, err := parseScalarTable(tg, "fall_constraint")
	if err != nil {
		return err
	}
	if tt == "setup_rising" {
		c.Setup = [2]float64{rise, fall}
	} else {
		c.Hold = [2]float64{rise, fall}
	}
	return nil
}

func parseScalarTable(tg *group, name string) (float64, error) {
	gs := tg.subsNamed(name)
	if len(gs) != 1 {
		return 0, fmt.Errorf("expected one %s group", name)
	}
	vals, ok := gs[0].attrs["values"]
	if !ok || len(vals) != 1 {
		return 0, fmt.Errorf("%s without scalar values", name)
	}
	return strconv.ParseFloat(strings.Trim(vals[0], `" `), 64)
}

func parseArc(out string, tg *group) (*liberty.Arc, error) {
	a := &liberty.Arc{
		From: strings.Trim(tg.attr("related_pin"), `"`),
		To:   out,
	}
	switch tg.attr("timing_sense") {
	case "positive_unate":
		a.Sense = liberty.PositiveUnate
	case "negative_unate":
		a.Sense = liberty.NegativeUnate
	case "non_unate":
		a.Sense = liberty.NonUnate
	default:
		return nil, fmt.Errorf("bad timing_sense %q", tg.attr("timing_sense"))
	}
	specs := []struct {
		group string
		dst   *liberty.Table
	}{
		{"cell_rise", &a.Delay[liberty.Rise]},
		{"rise_transition", &a.OutSlew[liberty.Rise]},
		{"ocv_sigma_cell_rise", &a.Sigma[liberty.Rise]},
		{"cell_fall", &a.Delay[liberty.Fall]},
		{"fall_transition", &a.OutSlew[liberty.Fall]},
		{"ocv_sigma_cell_fall", &a.Sigma[liberty.Fall]},
	}
	for _, sp := range specs {
		gs := tg.subsNamed(sp.group)
		if len(gs) != 1 {
			return nil, fmt.Errorf("expected one %s group", sp.group)
		}
		tb, err := parseTable(gs[0])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.group, err)
		}
		*sp.dst = *tb
	}
	return a, nil
}

func parseTable(g *group) (*liberty.Table, error) {
	t := &liberty.Table{}
	var err error
	if t.Slew, err = parseFloatList(g.attrs["index_1"]); err != nil {
		return nil, fmt.Errorf("index_1: %w", err)
	}
	if t.Load, err = parseFloatList(g.attrs["index_2"]); err != nil {
		return nil, fmt.Errorf("index_2: %w", err)
	}
	rows, ok := g.attrs["values"]
	if !ok {
		return nil, fmt.Errorf("missing values")
	}
	for _, row := range rows {
		vals, err := parseFloatList([]string{row})
		if err != nil {
			return nil, fmt.Errorf("values row: %w", err)
		}
		t.Val = append(t.Val, vals)
	}
	return t, nil
}

func parseFloatList(raw []string) ([]float64, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing")
	}
	var out []float64
	for _, chunk := range raw {
		chunk = strings.Trim(chunk, `" `)
		for _, f := range strings.Split(chunk, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

func parseFloatAttr(g *group, key string) (float64, error) {
	s := g.attr(key)
	if s == "" {
		return 0, fmt.Errorf("missing attribute %s", key)
	}
	return strconv.ParseFloat(s, 64)
}

// --- tokenizer / parser ---

type token struct {
	kind byte // 'w' word, 's' string, or one of (){};:,
	text string
}

func tokenize(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == '\\' && i+1 < len(src) && src[i+1] == '\n':
			i += 2 // line continuation
		case unicode.IsSpace(rune(ch)):
			i++
		case ch == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case ch == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("libertyio: unterminated block comment")
			}
			i += end + 4
		case ch == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("libertyio: unterminated string")
			}
			toks = append(toks, token{'s', src[i : j+1]})
			i = j + 1
		case strings.IndexByte("(){};:,", ch) >= 0:
			toks = append(toks, token{ch, string(ch)})
			i++
		default:
			j := i
			for j < len(src) && !unicode.IsSpace(rune(src[j])) && strings.IndexByte("(){};:,\"", src[j]) < 0 {
				j++
			}
			toks = append(toks, token{'w', src[i:j]})
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() *token {
	if p.pos < len(p.toks) {
		return &p.toks[p.pos]
	}
	return nil
}

func (p *parser) next() *token {
	t := p.peek()
	if t != nil {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind byte) (*token, error) {
	t := p.next()
	if t == nil || t.kind != kind {
		return nil, fmt.Errorf("libertyio: expected %q, got %v", string(kind), t)
	}
	return t, nil
}

// parseGroup parses `name (args...) { body }`.
func (p *parser) parseGroup() (*group, error) {
	nameTok, err := p.expect('w')
	if err != nil {
		return nil, err
	}
	g := &group{name: nameTok.text, attrs: map[string][]string{}}
	if _, err := p.expect('('); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t == nil {
			return nil, fmt.Errorf("libertyio: unterminated group args")
		}
		if t.kind == ')' {
			break
		}
		if t.kind == ',' {
			continue
		}
		g.args = append(g.args, t.text)
	}
	if _, err := p.expect('{'); err != nil {
		return nil, err
	}
	if err := p.parseBodyInto(g); err != nil {
		return nil, err
	}
	return g, nil
}

// parseBodyInto parses a group body (after '{') into g, sharing the logic of
// parseGroup's loop.
func (p *parser) parseBodyInto(g *group) error {
	for {
		t := p.peek()
		if t == nil {
			return fmt.Errorf("libertyio: unterminated group %s", g.name)
		}
		if t.kind == '}' {
			p.next()
			return nil
		}
		if t.kind != 'w' {
			return fmt.Errorf("libertyio: unexpected token %q in group %s", t.text, g.name)
		}
		key := p.next().text
		sep := p.peek()
		switch {
		case sep != nil && sep.kind == ':':
			p.next()
			var vals []string
			for {
				v := p.next()
				if v == nil {
					return fmt.Errorf("libertyio: unterminated attribute %s", key)
				}
				if v.kind == ';' {
					break
				}
				vals = append(vals, v.text)
			}
			g.attrs[key] = []string{strings.Join(vals, " ")}
		case sep != nil && sep.kind == '(':
			p.next()
			var args []string
			for {
				v := p.next()
				if v == nil {
					return fmt.Errorf("libertyio: unterminated %s(...)", key)
				}
				if v.kind == ')' {
					break
				}
				if v.kind == ',' {
					continue
				}
				args = append(args, strings.Trim(v.text, `"`))
			}
			after := p.peek()
			if after != nil && after.kind == '{' {
				p.next()
				sub := &group{name: key, args: args, attrs: map[string][]string{}}
				if err := p.parseBodyInto(sub); err != nil {
					return err
				}
				g.subs = append(g.subs, sub)
				continue
			}
			if after != nil && after.kind == ';' {
				p.next()
			}
			g.attrs[key] = append(g.attrs[key], args...)
		default:
			return fmt.Errorf("libertyio: stray token after %q", key)
		}
	}
}
