package libertyio

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"insta/internal/bench"
	"insta/internal/liberty"
	"insta/internal/refsta"
)

func TestRoundTripLibrary(t *testing.T) {
	for _, tech := range []liberty.Tech{liberty.TechN3(), liberty.TechASAP7()} {
		orig := liberty.NewSynthetic(tech)
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		if got.Name != orig.Name {
			t.Errorf("name %q != %q", got.Name, orig.Name)
		}
		if len(got.Cells) != len(orig.Cells) {
			t.Fatalf("%s: %d cells, want %d", tech.Name, len(got.Cells), len(orig.Cells))
		}
		for _, want := range orig.Cells {
			id, ok := got.CellByName(want.Name)
			if !ok {
				t.Fatalf("cell %s lost", want.Name)
			}
			c := got.Cell(id)
			if c.Footprint != want.Footprint || c.Drive != want.Drive {
				t.Fatalf("cell %s: footprint/drive %s/%d, want %s/%d",
					want.Name, c.Footprint, c.Drive, want.Footprint, want.Drive)
			}
			if c.Area != want.Area || c.Leakage != want.Leakage {
				t.Fatalf("cell %s: area/leakage mismatch", want.Name)
			}
			if !reflect.DeepEqual(c.PinCap, want.PinCap) {
				t.Fatalf("cell %s: pin caps differ", want.Name)
			}
			if c.Seq != want.Seq || c.Setup != want.Setup || c.Hold != want.Hold {
				t.Fatalf("cell %s: sequential attributes differ", want.Name)
			}
			if len(c.Arcs) != len(want.Arcs) {
				t.Fatalf("cell %s: %d arcs, want %d", want.Name, len(c.Arcs), len(want.Arcs))
			}
			for i := range want.Arcs {
				wa, ga := &want.Arcs[i], &c.Arcs[i]
				if wa.From != ga.From || wa.To != ga.To || wa.Sense != ga.Sense {
					t.Fatalf("cell %s arc %d header differs", want.Name, i)
				}
				for rf := 0; rf < 2; rf++ {
					if !reflect.DeepEqual(wa.Delay[rf], ga.Delay[rf]) ||
						!reflect.DeepEqual(wa.OutSlew[rf], ga.OutSlew[rf]) ||
						!reflect.DeepEqual(wa.Sigma[rf], ga.Sigma[rf]) {
						t.Fatalf("cell %s arc %d rf %d tables differ", want.Name, i, rf)
					}
				}
			}
		}
	}
}

// TestRoundTripTiming times the same design against the original and the
// re-read library; slacks must agree exactly.
func TestRoundTripTiming(t *testing.T) {
	b, err := bench.Generate(bench.Spec{
		Name: "libiotest", Seed: 4, Tech: liberty.TechN3(),
		Groups: 2, FFsPerGroup: 5, Layers: 3, Width: 5,
		CrossFrac: 0.1, NumPIs: 2, NumPOs: 2,
		Period: 800, Uncertainty: 10, Die: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	refA, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Write(&buf, b.Lib); err != nil {
		t.Fatal(err)
	}
	lib2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Cell ids must be stable for the design to bind unchanged.
	for i := range b.Lib.Cells {
		if b.Lib.Cells[i].Name != lib2.Cells[i].Name {
			t.Fatalf("cell id %d renames %s -> %s", i, b.Lib.Cells[i].Name, lib2.Cells[i].Name)
		}
	}
	refB, err := refsta.New(b.D, lib2, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := refA.EndpointSlacks(), refB.EndpointSlacks()
	for i := range sa {
		if math.IsInf(sa[i], 1) && math.IsInf(sb[i], 1) {
			continue
		}
		if sa[i] != sb[i] {
			t.Fatalf("ep %d: %v != %v", i, sb[i], sa[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not library":    "cell (X) { }",
		"no cells":       "library (l) { }",
		"unterminated":   "library (l) { cell (X) {",
		"bad sense":      `library (l) { cell (X) { cell_footprint : "X"; area : 1; pin (A) { direction : input; capacitance : 1; } pin (Y) { direction : output; timing () { related_pin : "A"; timing_sense : sideways; } } } }`,
		"no footprint":   "library (l) { cell (X) { area : 1; } }",
		"bad direction":  `library (l) { cell (X) { cell_footprint : "X"; area : 1; pin (A) { direction : diagonal; } } }`,
		"string runaway": `library (l) { cell (X) { cell_footprint : "X`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteShape(t *testing.T) {
	lib := liberty.NewSynthetic(liberty.TechN3())
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"library (n3-synthetic)", "cell (INV_X1)", "cell_footprint",
		"timing_sense : negative_unate", "ocv_sigma_cell_rise",
		"ff (IQ, IQN)", "timing_type : setup_rising", "timing_type : hold_rising",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("liberty text missing %q", want)
		}
	}
}
