// Package levelize assigns timing levels to the pins of a timing graph by
// topological (Kahn) sorting, the role Graph-Tool plays in the paper's
// initialization (§III-A). Pins within a level have no arcs between them, so
// a level can be processed by one parallel kernel launch.
//
// A node's level is the length of the longest arc path reaching it — a
// property with a unique solution on a DAG — and the launch Order is a
// counting sort by (level, id). Both are therefore canonical: any procedure
// that computes longest-path levels yields bit-identical Results, which is
// what lets Incremental re-levelize only the region downstream of a
// structural edit and still reproduce Levelize exactly (the topo subsystem's
// differential tests assert this).
package levelize

import (
	"fmt"
	"strings"
)

// Arc is a directed timing dependency From → To between node ids.
type Arc struct {
	From, To int32
}

// Result is the level schedule of a graph.
type Result struct {
	Level      []int32 // level of each node; sources are level 0
	NumLevels  int
	Order      []int32 // nodes sorted by (level, id): the kernel launch order
	LevelStart []int32 // len NumLevels+1; Order[LevelStart[l]:LevelStart[l+1]] is level l
}

// Nodes returns the node ids of level l.
func (r *Result) Nodes(l int) []int32 {
	return r.Order[r.LevelStart[l]:r.LevelStart[l+1]]
}

// IncStats reports what an Incremental call actually re-leveled.
type IncStats struct {
	Region      int // nodes whose level was recomputed (forward closure of the seeds)
	MinLevel    int // lowest new level in the region (0 when the region is empty)
	MaxLevel    int // highest new level in the region
	LevelsSpan  int // MaxLevel-MinLevel+1, the re-levelized window (0 when empty)
	TotalLevels int // NumLevels of the resulting schedule
}

// csr is the validated fanout adjacency of a graph, shared by the full and
// incremental entry points.
type csr struct {
	indeg    []int32
	outStart []int32
	outAdj   []int32
}

// buildCSR validates the arcs and builds fanout adjacency plus in-degrees.
func buildCSR(n int, arcs []Arc) (*csr, error) {
	indeg := make([]int32, n)
	outCount := make([]int32, n)
	for _, a := range arcs {
		if a.From < 0 || int(a.From) >= n || a.To < 0 || int(a.To) >= n {
			return nil, fmt.Errorf("levelize: arc %d->%d out of range [0,%d)", a.From, a.To, n)
		}
		if a.From == a.To {
			return nil, fmt.Errorf("levelize: self-loop on node %d", a.From)
		}
		outCount[a.From]++
		indeg[a.To]++
	}
	outStart := make([]int32, n+1)
	for i := 0; i < n; i++ {
		outStart[i+1] = outStart[i] + outCount[i]
	}
	outAdj := make([]int32, len(arcs))
	fill := outCount
	for i := range fill {
		fill[i] = 0
	}
	for _, a := range arcs {
		outAdj[outStart[a.From]+fill[a.From]] = a.To
		fill[a.From]++
	}
	return &csr{indeg: indeg, outStart: outStart, outAdj: outAdj}, nil
}

// schedule builds the canonical (level, id) launch order from final levels.
func schedule(level []int32) *Result {
	n := len(level)
	numLevels := 0
	for _, l := range level {
		if int(l)+1 > numLevels {
			numLevels = int(l) + 1
		}
	}
	if n == 0 {
		numLevels = 0
	}
	counts := make([]int32, numLevels+1)
	for _, l := range level {
		counts[l]++
	}
	starts := make([]int32, numLevels+1)
	for i := 0; i < numLevels; i++ {
		starts[i+1] = starts[i] + counts[i]
	}
	ordered := make([]int32, n)
	cursor := append([]int32(nil), starts[:numLevels]...)
	for i := int32(0); int(i) < n; i++ {
		l := level[i]
		ordered[cursor[l]] = i
		cursor[l]++
	}
	return &Result{
		Level:      level,
		NumLevels:  numLevels,
		Order:      ordered,
		LevelStart: starts,
	}
}

// Levelize computes the level schedule of a graph with n nodes. A node's
// level is the length of the longest arc path reaching it; nodes with no
// fan-in are level 0. It returns an error naming a sample cycle if the graph
// is not a DAG, or if an arc references an out-of-range node.
func Levelize(n int, arcs []Arc) (*Result, error) {
	g, err := buildCSR(n, arcs)
	if err != nil {
		return nil, err
	}
	level := make([]int32, n)
	frontier := make([]int32, 0, n)
	for i := int32(0); int(i) < n; i++ {
		if g.indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	processed := len(frontier)
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.outAdj[g.outStart[u]:g.outStart[u+1]] {
				g.indeg[v]--
				if lv := level[u] + 1; lv > level[v] {
					level[v] = lv
				}
				if g.indeg[v] == 0 {
					next = append(next, v)
				}
			}
		}
		frontier = next
		processed += len(next)
	}
	if processed != n {
		return nil, fmt.Errorf("levelize: graph has a cycle: %s", sampleCycle(n, g.indeg, g.outStart, g.outAdj))
	}
	return schedule(level), nil
}

// Incremental re-levelizes a graph after a structural edit, recomputing
// levels only inside the forward closure of the seed nodes — the nodes whose
// fan-in set changed. Everything upstream of (and disjoint from) that region
// keeps its level from prev untouched, which is what makes the result
// bit-identical to a full Levelize of the edited graph:
//
//   - Any node with a parent in the region is itself in the region (forward
//     closure), so a node outside the region has only out-of-region parents,
//     whose levels are unchanged by induction — its longest incoming path,
//     and hence its level, is unchanged.
//   - Inside the region the restricted Kahn relaxation below computes exactly
//     the longest-path level, with out-of-region parents contributing fixed
//     floor levels: the same unique solution the full pass finds.
//   - The launch order is rebuilt by the same counting sort (schedule), so
//     Order/LevelStart match entry for entry.
//
// n and arcs describe the *edited* graph; n must be >= len(prev.Level)
// (nodes are only ever appended — removed instances become floating level-0
// nodes). Every node whose fan-in changed, including appended nodes, must be
// listed in seeds. A cycle introduced by the edit necessarily lies inside the
// region and is reported as an error, leaving no partial result.
func Incremental(n int, arcs []Arc, prev *Result, seeds []int32) (*Result, IncStats, error) {
	var st IncStats
	if prev == nil {
		return nil, st, fmt.Errorf("levelize: incremental requires a previous result")
	}
	if n < len(prev.Level) {
		return nil, st, fmt.Errorf("levelize: node count shrank %d -> %d (nodes are append-only)", len(prev.Level), n)
	}
	g, err := buildCSR(n, arcs)
	if err != nil {
		return nil, st, err
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, st, fmt.Errorf("levelize: seed %d out of range [0,%d)", s, n)
		}
	}
	// Appended nodes have no previous level; they must be seeded or the
	// region would miss them.
	seeded := make([]bool, n)
	for _, s := range seeds {
		seeded[s] = true
	}
	for i := len(prev.Level); i < n; i++ {
		if !seeded[int32(i)] {
			return nil, st, fmt.Errorf("levelize: appended node %d not in seeds", i)
		}
	}

	// Region R: forward closure of the seeds over the edited fanout adjacency.
	inR := make([]bool, n)
	region := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if !inR[s] {
			inR[s] = true
			region = append(region, s)
		}
	}
	for i := 0; i < len(region); i++ {
		u := region[i]
		for _, v := range g.outAdj[g.outStart[u]:g.outStart[u+1]] {
			if !inR[v] {
				inR[v] = true
				region = append(region, v)
			}
		}
	}

	level := make([]int32, n)
	copy(level, prev.Level)
	// In-region in-degree, counted through region nodes' out-edges, and the
	// floor level each region node inherits from its out-of-region parents.
	indegR := make([]int32, n)
	for _, u := range region {
		level[u] = 0
		for _, v := range g.outAdj[g.outStart[u]:g.outStart[u+1]] {
			if inR[v] {
				indegR[v]++
			}
		}
	}
	for _, a := range arcs {
		if inR[a.To] && !inR[a.From] {
			if lv := level[a.From] + 1; lv > level[a.To] {
				level[a.To] = lv
			}
		}
	}

	// Restricted Kahn over the region.
	frontier := make([]int32, 0, len(region))
	for _, u := range region {
		if indegR[u] == 0 {
			frontier = append(frontier, u)
		}
	}
	processed := len(frontier)
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range g.outAdj[g.outStart[u]:g.outStart[u+1]] {
				if !inR[v] {
					continue
				}
				indegR[v]--
				if lv := level[u] + 1; lv > level[v] {
					level[v] = lv
				}
				if indegR[v] == 0 {
					next = append(next, v)
				}
			}
		}
		frontier = next
		processed += len(next)
	}
	if processed != len(region) {
		return nil, st, fmt.Errorf("levelize: edit introduced a cycle: %s", sampleCycle(n, indegR, g.outStart, g.outAdj))
	}

	res := schedule(level)
	st.Region = len(region)
	st.TotalLevels = res.NumLevels
	if len(region) > 0 {
		st.MinLevel = int(level[region[0]])
		st.MaxLevel = st.MinLevel
		for _, u := range region {
			if l := int(level[u]); l < st.MinLevel {
				st.MinLevel = l
			} else if l > st.MaxLevel {
				st.MaxLevel = l
			}
		}
		st.LevelsSpan = st.MaxLevel - st.MinLevel + 1
	}
	return res, st, nil
}

// IncrementalCSR is Incremental for callers that already hold the edited
// graph's adjacency in CSR form (the compiled-state fan-out and fan-in CSRs a
// patched recompile maintains in place): it skips the O(arcs) adjacency
// build and the O(arcs) floor scan, making the re-levelization itself scale
// with the re-leveled region rather than the design.
//
// foStart/foAdj is the fan-out CSR (slots of pin p list its successor pins);
// faninStart/faninFrom is the fan-in CSR (slots of pin p list its
// predecessor pins). Both must describe the same edited graph with n pins —
// they are trusted, not validated (a compiled State has already passed
// Validate). The floor pass walks only the region pins' fan-in, which is
// equivalent to the full-arc scan in Incremental: an arc contributes a floor
// level exactly when its head is in the region and its tail is not, and max
// over any visit order yields the same floor. Everything downstream —
// restricted Kahn, cycle reporting, the counting-sort schedule — is the same
// code path, so the Result is bit-identical to Incremental and to a full
// Levelize of the edited graph.
func IncrementalCSR(n int, foStart, foAdj, faninStart, faninFrom []int32, prev *Result, seeds []int32) (*Result, IncStats, error) {
	var st IncStats
	if prev == nil {
		return nil, st, fmt.Errorf("levelize: incremental requires a previous result")
	}
	if n < len(prev.Level) {
		return nil, st, fmt.Errorf("levelize: node count shrank %d -> %d (nodes are append-only)", len(prev.Level), n)
	}
	if len(foStart) != n+1 || len(faninStart) != n+1 {
		return nil, st, fmt.Errorf("levelize: CSR starts sized %d/%d, want %d", len(foStart), len(faninStart), n+1)
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, st, fmt.Errorf("levelize: seed %d out of range [0,%d)", s, n)
		}
	}
	seeded := make(map[int32]bool, len(seeds))
	for _, s := range seeds {
		seeded[s] = true
	}
	for i := len(prev.Level); i < n; i++ {
		if !seeded[int32(i)] {
			return nil, st, fmt.Errorf("levelize: appended node %d not in seeds", i)
		}
	}

	// Region R: forward closure of the seeds over the edited fanout CSR.
	inR := make([]bool, n)
	region := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if !inR[s] {
			inR[s] = true
			region = append(region, s)
		}
	}
	for i := 0; i < len(region); i++ {
		u := region[i]
		for _, v := range foAdj[foStart[u]:foStart[u+1]] {
			if !inR[v] {
				inR[v] = true
				region = append(region, v)
			}
		}
	}

	level := make([]int32, n)
	copy(level, prev.Level)
	indegR := make([]int32, n)
	for _, u := range region {
		level[u] = 0
		for _, v := range foAdj[foStart[u]:foStart[u+1]] {
			if inR[v] {
				indegR[v]++
			}
		}
	}
	// Floor levels from out-of-region parents, read off the region pins'
	// fan-in instead of a full arc scan.
	for _, v := range region {
		for _, u := range faninFrom[faninStart[v]:faninStart[v+1]] {
			if !inR[u] {
				if lv := level[u] + 1; lv > level[v] {
					level[v] = lv
				}
			}
		}
	}

	// Restricted Kahn over the region.
	frontier := make([]int32, 0, len(region))
	for _, u := range region {
		if indegR[u] == 0 {
			frontier = append(frontier, u)
		}
	}
	processed := len(frontier)
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range foAdj[foStart[u]:foStart[u+1]] {
				if !inR[v] {
					continue
				}
				indegR[v]--
				if lv := level[u] + 1; lv > level[v] {
					level[v] = lv
				}
				if indegR[v] == 0 {
					next = append(next, v)
				}
			}
		}
		frontier = next
		processed += len(next)
	}
	if processed != len(region) {
		return nil, st, fmt.Errorf("levelize: edit introduced a cycle: %s", sampleCycle(n, indegR, foStart, foAdj))
	}

	res := schedule(level)
	st.Region = len(region)
	st.TotalLevels = res.NumLevels
	if len(region) > 0 {
		st.MinLevel = int(level[region[0]])
		st.MaxLevel = st.MinLevel
		for _, u := range region {
			if l := int(level[u]); l < st.MinLevel {
				st.MinLevel = l
			} else if l > st.MaxLevel {
				st.MaxLevel = l
			}
		}
		st.LevelsSpan = st.MaxLevel - st.MinLevel + 1
	}
	return res, st, nil
}

// sampleCycle walks the unprocessed subgraph to print one cycle for
// diagnostics.
func sampleCycle(n int, indeg []int32, outStart, outAdj []int32) string {
	inCycleRegion := make([]bool, n)
	var start int32 = -1
	for i := 0; i < n; i++ {
		if indeg[i] > 0 {
			inCycleRegion[i] = true
			if start < 0 {
				start = int32(i)
			}
		}
	}
	if start < 0 {
		return "(unlocatable)"
	}
	// Follow successors inside the cyclic region until a repeat.
	seenAt := make(map[int32]int)
	var path []int32
	u := start
	for {
		if at, ok := seenAt[u]; ok {
			var b strings.Builder
			for _, v := range path[at:] {
				fmt.Fprintf(&b, "%d -> ", v)
			}
			fmt.Fprintf(&b, "%d", u)
			return b.String()
		}
		seenAt[u] = len(path)
		path = append(path, u)
		advanced := false
		for _, v := range outAdj[outStart[u]:outStart[u+1]] {
			if inCycleRegion[v] {
				u = v
				advanced = true
				break
			}
		}
		if !advanced {
			return "(unlocatable)"
		}
	}
}
