// Package levelize assigns timing levels to the pins of a timing graph by
// topological (Kahn) sorting, the role Graph-Tool plays in the paper's
// initialization (§III-A). Pins within a level have no arcs between them, so
// a level can be processed by one parallel kernel launch.
package levelize

import (
	"fmt"
	"strings"
)

// Arc is a directed timing dependency From → To between node ids.
type Arc struct {
	From, To int32
}

// Result is the level schedule of a graph.
type Result struct {
	Level      []int32 // level of each node; sources are level 0
	NumLevels  int
	Order      []int32 // nodes sorted by (level, id): the kernel launch order
	LevelStart []int32 // len NumLevels+1; Order[LevelStart[l]:LevelStart[l+1]] is level l
}

// Nodes returns the node ids of level l.
func (r *Result) Nodes(l int) []int32 {
	return r.Order[r.LevelStart[l]:r.LevelStart[l+1]]
}

// Levelize computes the level schedule of a graph with n nodes. A node's
// level is the length of the longest arc path reaching it; nodes with no
// fan-in are level 0. It returns an error naming a sample cycle if the graph
// is not a DAG, or if an arc references an out-of-range node.
func Levelize(n int, arcs []Arc) (*Result, error) {
	indeg := make([]int32, n)
	// CSR of fanout adjacency.
	outCount := make([]int32, n)
	for _, a := range arcs {
		if a.From < 0 || int(a.From) >= n || a.To < 0 || int(a.To) >= n {
			return nil, fmt.Errorf("levelize: arc %d->%d out of range [0,%d)", a.From, a.To, n)
		}
		if a.From == a.To {
			return nil, fmt.Errorf("levelize: self-loop on node %d", a.From)
		}
		outCount[a.From]++
		indeg[a.To]++
	}
	outStart := make([]int32, n+1)
	for i := 0; i < n; i++ {
		outStart[i+1] = outStart[i] + outCount[i]
	}
	outAdj := make([]int32, len(arcs))
	fill := make([]int32, n)
	for _, a := range arcs {
		outAdj[outStart[a.From]+fill[a.From]] = a.To
		fill[a.From]++
	}

	level := make([]int32, n)
	frontier := make([]int32, 0, n)
	for i := int32(0); int(i) < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	processed := len(frontier)
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range outAdj[outStart[u]:outStart[u+1]] {
				indeg[v]--
				if lv := level[u] + 1; lv > level[v] {
					level[v] = lv
				}
				if indeg[v] == 0 {
					next = append(next, v)
				}
			}
		}
		frontier = next
		processed += len(next)
	}
	if processed != n {
		return nil, fmt.Errorf("levelize: graph has a cycle: %s", sampleCycle(n, indeg, outStart, outAdj))
	}

	numLevels := 0
	for _, l := range level {
		if int(l)+1 > numLevels {
			numLevels = int(l) + 1
		}
	}
	if n == 0 {
		numLevels = 0
	}
	counts := make([]int32, numLevels+1)
	for _, l := range level {
		counts[l]++
	}
	starts := make([]int32, numLevels+1)
	for i := 0; i < numLevels; i++ {
		starts[i+1] = starts[i] + counts[i]
	}
	ordered := make([]int32, n)
	cursor := append([]int32(nil), starts[:numLevels]...)
	for i := int32(0); int(i) < n; i++ {
		l := level[i]
		ordered[cursor[l]] = i
		cursor[l]++
	}
	return &Result{
		Level:      level,
		NumLevels:  numLevels,
		Order:      ordered,
		LevelStart: starts,
	}, nil
}

// sampleCycle walks the unprocessed subgraph to print one cycle for
// diagnostics.
func sampleCycle(n int, indeg []int32, outStart, outAdj []int32) string {
	inCycleRegion := make([]bool, n)
	var start int32 = -1
	for i := 0; i < n; i++ {
		if indeg[i] > 0 {
			inCycleRegion[i] = true
			if start < 0 {
				start = int32(i)
			}
		}
	}
	if start < 0 {
		return "(unlocatable)"
	}
	// Follow successors inside the cyclic region until a repeat.
	seenAt := make(map[int32]int)
	var path []int32
	u := start
	for {
		if at, ok := seenAt[u]; ok {
			var b strings.Builder
			for _, v := range path[at:] {
				fmt.Fprintf(&b, "%d -> ", v)
			}
			fmt.Fprintf(&b, "%d", u)
			return b.String()
		}
		seenAt[u] = len(path)
		path = append(path, u)
		advanced := false
		for _, v := range outAdj[outStart[u]:outStart[u+1]] {
			if inCycleRegion[v] {
				u = v
				advanced = true
				break
			}
		}
		if !advanced {
			return "(unlocatable)"
		}
	}
}
