package levelize

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestChain(t *testing.T) {
	r, err := Levelize(4, []Arc{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3}
	for i, l := range want {
		if r.Level[i] != l {
			t.Errorf("level[%d] = %d, want %d", i, r.Level[i], l)
		}
	}
	if r.NumLevels != 4 {
		t.Errorf("NumLevels = %d, want 4", r.NumLevels)
	}
	for l := 0; l < 4; l++ {
		nodes := r.Nodes(l)
		if len(nodes) != 1 || nodes[0] != int32(l) {
			t.Errorf("Nodes(%d) = %v", l, nodes)
		}
	}
}

func TestDiamondLongestPath(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 3: node 3 must be level 2 (longest path), not 1.
	r, err := Levelize(4, []Arc{{0, 1}, {1, 3}, {0, 3}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Level[3] != 2 {
		t.Errorf("level[3] = %d, want 2", r.Level[3])
	}
	if r.Level[2] != 1 {
		t.Errorf("level[2] = %d, want 1", r.Level[2])
	}
}

func TestIsolatedNodes(t *testing.T) {
	r, err := Levelize(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLevels != 1 || len(r.Nodes(0)) != 3 {
		t.Errorf("isolated nodes: NumLevels=%d Nodes(0)=%v", r.NumLevels, r.Nodes(0))
	}
}

func TestEmptyGraph(t *testing.T) {
	r, err := Levelize(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLevels != 0 || len(r.Order) != 0 {
		t.Errorf("empty graph: %+v", r)
	}
}

func TestCycleDetected(t *testing.T) {
	_, err := Levelize(3, []Arc{{0, 1}, {1, 2}, {2, 1}})
	if err == nil {
		t.Fatal("cycle not detected")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error %q does not mention cycle", err)
	}
	// The reported cycle should contain the actual cyclic nodes 1 and 2.
	if !strings.Contains(err.Error(), "1") || !strings.Contains(err.Error(), "2") {
		t.Errorf("cycle message %q does not name cycle nodes", err)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	if _, err := Levelize(2, []Arc{{1, 1}}); err == nil {
		t.Error("self-loop not rejected")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	if _, err := Levelize(2, []Arc{{0, 5}}); err == nil {
		t.Error("out-of-range arc not rejected")
	}
	if _, err := Levelize(2, []Arc{{-1, 0}}); err == nil {
		t.Error("negative arc not rejected")
	}
}

func TestOrderRespectsLevelsProperty(t *testing.T) {
	// Property: for random DAGs (arcs only from lower id to higher id),
	// every arc satisfies Level[from] < Level[to], Order is a permutation,
	// and LevelStart partitions Order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		var arcs []Arc
		for i := 0; i < n*2; i++ {
			a := int32(rng.Intn(n - 1))
			b := a + 1 + int32(rng.Intn(n-int(a)-1))
			arcs = append(arcs, Arc{a, b})
		}
		r, err := Levelize(n, arcs)
		if err != nil {
			return false
		}
		for _, a := range arcs {
			if r.Level[a.From] >= r.Level[a.To] {
				return false
			}
		}
		seen := make([]bool, n)
		for _, v := range r.Order {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		for l := 0; l < r.NumLevels; l++ {
			for _, v := range r.Nodes(l) {
				if r.Level[v] != int32(l) {
					return false
				}
			}
		}
		return int(r.LevelStart[r.NumLevels]) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicOrderWithinLevel(t *testing.T) {
	arcs := []Arc{{2, 5}, {0, 5}, {1, 4}, {3, 4}}
	a, err := Levelize(6, arcs)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Levelize(6, arcs)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("non-deterministic order")
		}
	}
	// Within level 0, ids ascend.
	l0 := a.Nodes(0)
	for i := 1; i < len(l0); i++ {
		if l0[i] <= l0[i-1] {
			t.Fatalf("level 0 not ascending: %v", l0)
		}
	}
}

// incrementalMatchesFull applies an edit and checks Incremental against a
// full Levelize of the edited graph, element for element.
func incrementalMatchesFull(t *testing.T, n int, arcs []Arc, prev *Result, newN int, newArcs []Arc, seeds []int32) IncStats {
	t.Helper()
	inc, st, err := Incremental(newN, newArcs, prev, seeds)
	if err != nil {
		t.Fatalf("Incremental: %v", err)
	}
	full, err := Levelize(newN, newArcs)
	if err != nil {
		t.Fatalf("Levelize(edited): %v", err)
	}
	if !reflect.DeepEqual(inc, full) {
		t.Fatalf("incremental != full:\ninc  %+v\nfull %+v", inc, full)
	}
	return st
}

func TestIncrementalSpliceMatchesFull(t *testing.T) {
	// Chain 0->1->2->3 with a buffer (nodes 4,5) spliced into arc 1->2:
	// 1->4->5->2. Seeds: the appended nodes and the rewired sink.
	arcs := []Arc{{0, 1}, {1, 2}, {2, 3}}
	prev, err := Levelize(4, arcs)
	if err != nil {
		t.Fatal(err)
	}
	edited := []Arc{{0, 1}, {1, 4}, {4, 5}, {5, 2}, {2, 3}}
	st := incrementalMatchesFull(t, 4, arcs, prev, 6, edited, []int32{4, 5, 2})
	if st.Region != 4 { // 4, 5, 2, 3
		t.Errorf("region = %d, want 4", st.Region)
	}
	if st.TotalLevels != 6 {
		t.Errorf("total levels = %d, want 6", st.TotalLevels)
	}
}

func TestIncrementalUpstreamUntouchedRegion(t *testing.T) {
	// Wide graph: 0->{1..8}->9->10; splice into 9->10. Nodes 0..8 must stay
	// outside the region.
	var arcs []Arc
	for i := int32(1); i <= 8; i++ {
		arcs = append(arcs, Arc{0, i}, Arc{i, 9})
	}
	arcs = append(arcs, Arc{9, 10})
	prev, err := Levelize(11, arcs)
	if err != nil {
		t.Fatal(err)
	}
	edited := append(append([]Arc(nil), arcs[:len(arcs)-1]...), Arc{9, 11}, Arc{11, 12}, Arc{12, 10})
	st := incrementalMatchesFull(t, 11, arcs, prev, 13, edited, []int32{11, 12, 10})
	if st.Region != 3 {
		t.Errorf("region = %d, want 3 (upstream nodes re-leveled)", st.Region)
	}
}

func TestIncrementalRemovalMatchesFull(t *testing.T) {
	// Remove the buffer 1->4->5->2 again: node count stays (nodes are
	// append-only; 4 and 5 go floating), arc 1->2 is restored.
	arcs := []Arc{{0, 1}, {1, 4}, {4, 5}, {5, 2}, {2, 3}}
	prev, err := Levelize(6, arcs)
	if err != nil {
		t.Fatal(err)
	}
	edited := []Arc{{0, 1}, {1, 2}, {2, 3}}
	st := incrementalMatchesFull(t, 6, arcs, prev, 6, edited, []int32{2, 4, 5})
	if st.Region < 4 { // 2, 3, 4, 5
		t.Errorf("region = %d, want >= 4", st.Region)
	}
}

func TestIncrementalRandomEditsMatchFull(t *testing.T) {
	// Random layered DAGs with random arc retargets + node appends: the
	// incremental result must always deep-equal the full one.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(40)
		var arcs []Arc
		for i := 0; i < n*2; i++ {
			a := int32(rng.Intn(n - 1))
			b := a + 1 + int32(rng.Intn(n-int(a)-1))
			arcs = append(arcs, Arc{a, b})
		}
		prev, err := Levelize(n, arcs)
		if err != nil {
			t.Fatal(err)
		}
		// Edit: retarget a random arc through two appended nodes (splice),
		// or rewire a random arc's head to another downstream node.
		edited := append([]Arc(nil), arcs...)
		var seeds []int32
		newN := n
		if rng.Intn(2) == 0 && len(edited) > 0 {
			i := rng.Intn(len(edited))
			from, to := edited[i].From, edited[i].To
			x, y := int32(newN), int32(newN+1)
			newN += 2
			edited[i] = Arc{from, x}
			edited = append(edited, Arc{x, y}, Arc{y, to})
			seeds = []int32{x, y, to}
		} else {
			i := rng.Intn(len(edited))
			to := edited[i].To
			// Retarget tail to a random earlier node (keeps acyclicity).
			nf := int32(rng.Intn(int(to)))
			edited[i] = Arc{nf, to}
			seeds = []int32{to}
		}
		incrementalMatchesFull(t, n, arcs, prev, newN, edited, seeds)
	}
}

func TestIncrementalCycleRejected(t *testing.T) {
	arcs := []Arc{{0, 1}, {1, 2}}
	prev, err := Levelize(3, arcs)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire 0->1 into 2->1: creates 1->2->1.
	if _, _, err := Incremental(3, []Arc{{2, 1}, {1, 2}}, prev, []int32{1}); err == nil {
		t.Fatal("cycle not detected")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error %q does not mention cycle", err)
	}
}

func TestIncrementalValidation(t *testing.T) {
	prev, err := Levelize(3, []Arc{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Incremental(2, nil, prev, nil); err == nil {
		t.Error("shrinking node count not rejected")
	}
	if _, _, err := Incremental(3, nil, prev, []int32{7}); err == nil {
		t.Error("out-of-range seed not rejected")
	}
	if _, _, err := Incremental(4, []Arc{{0, 3}}, prev, nil); err == nil {
		t.Error("unseeded appended node not rejected")
	}
	if _, _, err := Incremental(3, nil, nil, nil); err == nil {
		t.Error("nil prev not rejected")
	}
}

func TestIncrementalNoSeedsIsIdentity(t *testing.T) {
	arcs := []Arc{{0, 1}, {1, 2}}
	prev, err := Levelize(3, arcs)
	if err != nil {
		t.Fatal(err)
	}
	inc, st, err := Incremental(3, arcs, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc, prev) {
		t.Fatalf("no-op edit changed the schedule: %+v vs %+v", inc, prev)
	}
	if st.Region != 0 || st.LevelsSpan != 0 {
		t.Errorf("no-op stats %+v", st)
	}
}
