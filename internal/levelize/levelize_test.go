package levelize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestChain(t *testing.T) {
	r, err := Levelize(4, []Arc{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3}
	for i, l := range want {
		if r.Level[i] != l {
			t.Errorf("level[%d] = %d, want %d", i, r.Level[i], l)
		}
	}
	if r.NumLevels != 4 {
		t.Errorf("NumLevels = %d, want 4", r.NumLevels)
	}
	for l := 0; l < 4; l++ {
		nodes := r.Nodes(l)
		if len(nodes) != 1 || nodes[0] != int32(l) {
			t.Errorf("Nodes(%d) = %v", l, nodes)
		}
	}
}

func TestDiamondLongestPath(t *testing.T) {
	// 0 -> 1 -> 3, 0 -> 3: node 3 must be level 2 (longest path), not 1.
	r, err := Levelize(4, []Arc{{0, 1}, {1, 3}, {0, 3}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Level[3] != 2 {
		t.Errorf("level[3] = %d, want 2", r.Level[3])
	}
	if r.Level[2] != 1 {
		t.Errorf("level[2] = %d, want 1", r.Level[2])
	}
}

func TestIsolatedNodes(t *testing.T) {
	r, err := Levelize(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLevels != 1 || len(r.Nodes(0)) != 3 {
		t.Errorf("isolated nodes: NumLevels=%d Nodes(0)=%v", r.NumLevels, r.Nodes(0))
	}
}

func TestEmptyGraph(t *testing.T) {
	r, err := Levelize(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLevels != 0 || len(r.Order) != 0 {
		t.Errorf("empty graph: %+v", r)
	}
}

func TestCycleDetected(t *testing.T) {
	_, err := Levelize(3, []Arc{{0, 1}, {1, 2}, {2, 1}})
	if err == nil {
		t.Fatal("cycle not detected")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error %q does not mention cycle", err)
	}
	// The reported cycle should contain the actual cyclic nodes 1 and 2.
	if !strings.Contains(err.Error(), "1") || !strings.Contains(err.Error(), "2") {
		t.Errorf("cycle message %q does not name cycle nodes", err)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	if _, err := Levelize(2, []Arc{{1, 1}}); err == nil {
		t.Error("self-loop not rejected")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	if _, err := Levelize(2, []Arc{{0, 5}}); err == nil {
		t.Error("out-of-range arc not rejected")
	}
	if _, err := Levelize(2, []Arc{{-1, 0}}); err == nil {
		t.Error("negative arc not rejected")
	}
}

func TestOrderRespectsLevelsProperty(t *testing.T) {
	// Property: for random DAGs (arcs only from lower id to higher id),
	// every arc satisfies Level[from] < Level[to], Order is a permutation,
	// and LevelStart partitions Order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		var arcs []Arc
		for i := 0; i < n*2; i++ {
			a := int32(rng.Intn(n - 1))
			b := a + 1 + int32(rng.Intn(n-int(a)-1))
			arcs = append(arcs, Arc{a, b})
		}
		r, err := Levelize(n, arcs)
		if err != nil {
			return false
		}
		for _, a := range arcs {
			if r.Level[a.From] >= r.Level[a.To] {
				return false
			}
		}
		seen := make([]bool, n)
		for _, v := range r.Order {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		for l := 0; l < r.NumLevels; l++ {
			for _, v := range r.Nodes(l) {
				if r.Level[v] != int32(l) {
					return false
				}
			}
		}
		return int(r.LevelStart[r.NumLevels]) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicOrderWithinLevel(t *testing.T) {
	arcs := []Arc{{2, 5}, {0, 5}, {1, 4}, {3, 4}}
	a, err := Levelize(6, arcs)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Levelize(6, arcs)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("non-deterministic order")
		}
	}
	// Within level 0, ids ascend.
	l0 := a.Nodes(0)
	for i := 1; i < len(l0); i++ {
		if l0[i] <= l0[i-1] {
			t.Fatalf("level 0 not ascending: %v", l0)
		}
	}
}
