package cmdutil

// Snapshot flags and the shared boot path: every cmd tool takes
// -snapshot-dir/-snapshot-max-mb, hashes its inputs to a content address, and
// either warm-starts from a cached compiled-state snapshot (internal/snap) or
// cold-builds — parse, reference signoff, extraction, compile — and writes the
// snapshot back for the next invocation. Warm boots skip the reference engine
// entirely, so Boot.Ref is nil on the warm path and ref-dependent reporting
// (correlation, path reports, resize-form ECOs) degrades explicitly.

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"insta/internal/bench"
	"insta/internal/circuitops"
	"insta/internal/core"
	"insta/internal/obs"
	"insta/internal/refsta"
	"insta/internal/snap"
)

// Snap carries the snapshot-cache flags after flag.Parse.
type Snap struct {
	Dir   string
	MaxMB int64

	cache    *snap.Cache
	cacheErr bool
}

// SnapFlags registers -snapshot-dir and -snapshot-max-mb on the default flag
// set. Call before flag.Parse; empty -snapshot-dir (the default) disables
// snapshots entirely.
func SnapFlags() *Snap {
	s := &Snap{}
	flag.StringVar(&s.Dir, "snapshot-dir", "",
		"content-addressed snapshot cache: warm-start from a compiled-state snapshot when the inputs hash to a cached entry, write one back after cold builds (empty = off)")
	flag.Int64Var(&s.MaxMB, "snapshot-max-mb", 2048,
		"snapshot cache byte bound in MB, LRU-evicted (<= 0 = unbounded)")
	return s
}

// Enabled reports whether -snapshot-dir was given.
func (s *Snap) Enabled() bool { return s.Dir != "" }

// Cache lazily opens the snapshot cache, or returns nil when snapshots are
// disabled or the directory cannot be created (warned once; tools then run
// cold exactly as if -snapshot-dir was never passed).
func (s *Snap) Cache() *snap.Cache {
	if !s.Enabled() || s.cacheErr {
		return nil
	}
	if s.cache == nil {
		c, err := snap.NewCache(s.Dir, s.MaxMB*1e6)
		if err != nil {
			slog.Warn("snapshot cache disabled", "dir", s.Dir, "err", err)
			s.cacheErr = true
			return nil
		}
		s.cache = c
	}
	return s.cache
}

// Boot is the result of obtaining compiled timing state, either warm (from a
// snapshot) or cold (full parse + signoff + extraction + compile).
type Boot struct {
	Design string
	Warm   bool
	Key    string // content address; "" when snapshots are disabled

	// State is the compiled timing state, ready for
	// core.NewEngineFromState / batch.NewFromState. Always set.
	State *core.State

	// Cold-path artifacts: the parsed design bundle, the initialized
	// reference engine, and the extraction tables. All nil on warm boots.
	B   *bench.Design
	Ref *refsta.Engine
	Tab *circuitops.Tables

	// Load is the snapshot decode wall time (warm); Build is the full
	// cold-build wall time (cold).
	Load  time.Duration
	Build time.Duration

	// Cache is the snapshot cache, or nil when snapshots are disabled.
	Cache *snap.Cache
}

// Mode returns "warm" or "cold" for logs, manifests and /healthz.
func (b *Boot) Mode() string {
	if b.Warm {
		return "warm"
	}
	return "cold"
}

// FillManifest records the boot provenance on a run manifest.
func (b *Boot) FillManifest(m *obs.Manifest) {
	m.BootMode = b.Mode()
	m.SnapshotKey = b.Key
	m.SnapLoadMS = float64(b.Load.Nanoseconds()) / 1e6
	m.ColdBuildMS = float64(b.Build.Nanoseconds()) / 1e6
}

// Tables returns extraction tables for the boot: the cold path's extracted
// tables, or their reconstruction from the snapshot state on warm boots.
func (b *Boot) Tables() *circuitops.Tables {
	if b.Tab != nil {
		return b.Tab
	}
	return b.State.Tables()
}

// BootDir boots from a design directory (design.v/.sdc/.spef with design.lib
// optional): with a snapshot cache the file contents are hashed and a hit
// skips parsing and the reference engine entirely; a miss (or disabled cache)
// cold-builds and writes the snapshot back.
func (s *Snap) BootDir(dir, tech string, tr *obs.Tracer) (*Boot, error) {
	bt := &Boot{Cache: s.Cache()}
	if bt.Cache != nil {
		libPath, vPath, sdcPath, spefPath := designPaths(dir)
		files := []string{vPath, sdcPath, spefPath}
		opts := []string{"mode=dir"}
		if _, err := os.Stat(libPath); err == nil {
			files = append([]string{libPath}, files...)
		} else {
			// The fallback library is build input too: switching -tech must
			// hash to a different snapshot.
			opts = append(opts, "lib=synthetic:"+tech)
		}
		if key, err := snap.KeyForInputs(opts, files...); err == nil {
			bt.Key = key
			if s.tryWarm(bt, tr) {
				return bt, nil
			}
		}
	}
	sp := tr.Start("cold-build")
	t0 := time.Now()
	b, err := LoadDir(dir, tech)
	if err != nil {
		sp.End()
		return nil, err
	}
	return bt, s.finishCold(bt, b, b.D.Name, sp, t0)
}

// BootPreset boots a built-in benchmark spec: presets are pure functions of
// their spec, so the spec itself is the content address.
func (s *Snap) BootPreset(spec bench.Spec, tr *obs.Tracer) (*Boot, error) {
	bt := &Boot{Cache: s.Cache()}
	if bt.Cache != nil {
		bt.Key = snap.KeyForPreset(spec)
		if s.tryWarm(bt, tr) {
			return bt, nil
		}
	}
	sp := tr.Start("cold-build")
	t0 := time.Now()
	b, err := bench.Generate(spec)
	if err != nil {
		sp.End()
		return nil, err
	}
	return bt, s.finishCold(bt, b, spec.Name, sp, t0)
}

// tryWarm attempts the snapshot load; corruption falls through to the cold
// path (the write-back repairs the cache) rather than failing the tool.
func (s *Snap) tryWarm(bt *Boot, tr *obs.Tracer) bool {
	sp := tr.StartArg("snap-load", "key", int64(len(bt.Key)))
	t0 := time.Now()
	snp, err := bt.Cache.Load(bt.Key)
	bt.Load = time.Since(t0)
	sp.End()
	if err != nil {
		slog.Warn("snapshot unreadable, cold-building", "key", shortKey(bt.Key), "err", err)
		return false
	}
	if snp == nil {
		return false
	}
	bt.Warm, bt.State, bt.Design = true, snp.State, snp.State.Design
	slog.Info("warm start", "design", bt.Design, "snapshot", shortKey(bt.Key),
		"load", bt.Load.Round(time.Microsecond).String())
	return true
}

// finishCold runs signoff + extraction + compile over a parsed bundle and
// writes the snapshot back (best-effort) when a cache is configured.
func (s *Snap) finishCold(bt *Boot, b *bench.Design, name string, sp *obs.Span, t0 time.Time) error {
	ref, err := refsta.New(b.D, b.Lib, b.Con, b.Par, refsta.DefaultConfig())
	if err != nil {
		sp.End()
		return fmt.Errorf("refsta: %w", err)
	}
	tab := circuitops.Extract(ref)
	st, err := core.CompileTraced(tab, sp)
	sp.End()
	if err != nil {
		return err
	}
	bt.Design, bt.State, bt.B, bt.Ref, bt.Tab = name, st, b, ref, tab
	bt.Build = time.Since(t0)
	if bt.Cache != nil && bt.Key != "" {
		if _, _, err := bt.Cache.Store(bt.Key, st, nil); err != nil {
			slog.Warn("snapshot write-back failed", "key", shortKey(bt.Key), "err", err)
		} else {
			slog.Info("snapshot written", "design", name, "snapshot", shortKey(bt.Key))
		}
	}
	return nil
}

// shortKey abbreviates a content address for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
