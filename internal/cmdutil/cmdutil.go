// Package cmdutil holds the small pieces every cmd tool shares: the
// scheduler flags (-workers/-grain), the multi-corner flag (-corners),
// preset-name resolution across the three benchmark suites, and
// loading/generating a design directory in the repo's file formats
// (design.lib/.v/.sdc/.spef).
package cmdutil

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"insta/internal/batch"
	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/liberty"
	"insta/internal/libertyio"
	"insta/internal/obs"
	"insta/internal/sdcio"
	"insta/internal/spef"
	"insta/internal/vlog"
)

// Sched carries the scheduler-pool flags after flag.Parse.
type Sched struct {
	Workers int
	Grain   int
}

// SchedFlags registers -workers and -grain on the default flag set. Call
// before flag.Parse; read the fields after.
func SchedFlags() *Sched {
	s := &Sched{}
	flag.IntVar(&s.Workers, "workers", runtime.NumCPU(), "scheduler pool participants (all parallel kernels)")
	flag.IntVar(&s.Grain, "grain", 0, "scheduler chunk size in pins (0 = auto-tuned per launch)")
	return s
}

// Options returns engine options carrying the scheduler flags; the caller
// fills the analysis knobs (TopK, Tau, Hold).
func (s *Sched) Options() core.Options {
	return core.Options{Workers: s.Workers, Grain: s.Grain}
}

// Corners carries the -corners flag after flag.Parse.
type Corners struct {
	Spec string
}

// CornersFlag registers -corners on the default flag set. The value is a
// scenario spec in batch.ParseScenarios grammar: named presets ("ss,tt,ff")
// and/or explicit derates ("hot:1.3/1.1/0.95" = delay/sigma/RC scale over
// nominal). Empty means single-corner (nominal) analysis.
func CornersFlag() *Corners {
	c := &Corners{}
	flag.StringVar(&c.Spec, "corners", "",
		"corner scenarios: preset names and/or name:delay/sigma/rc derates, comma-separated (e.g. ss,tt,ff); empty = nominal only")
	return c
}

// Enabled reports whether multi-corner analysis was requested.
func (c *Corners) Enabled() bool { return c.Spec != "" }

// Scenarios parses the flag value into batched-engine scenarios.
func (c *Corners) Scenarios() ([]batch.Scenario, error) {
	return batch.ParseScenarios(c.Spec)
}

// Obs carries the observability flags after flag.Parse: -trace (Chrome
// trace_event export), -manifest (JSON run record under results/manifests/),
// and -log-level (slog threshold for the default logger).
type Obs struct {
	TracePath string
	Manifest  bool
	LogLevel  string

	tool    string
	started time.Time
	tracer  *obs.Tracer
}

// ObsFlags registers -trace, -manifest and -log-level on the default flag
// set. Call before flag.Parse, then Setup right after it.
func ObsFlags() *Obs {
	o := &Obs{}
	flag.StringVar(&o.TracePath, "trace", "", "write a Chrome trace_event JSON of the run to this path")
	flag.BoolVar(&o.Manifest, "manifest", false, "write a JSON run manifest under "+obs.DefaultManifestDir+" (or $INSTA_MANIFEST_DIR)")
	flag.StringVar(&o.LogLevel, "log-level", "info", "slog threshold: debug, info, warn or error")
	return o
}

// Setup applies -log-level to the process-default slog logger and, when
// -trace or -manifest was requested, returns an enabled tracer to hand to the
// engines (nil otherwise — engines take a nil tracer at zero cost). Call once
// after flag.Parse; pair with a deferred Finish.
func (o *Obs) Setup(tool string) *obs.Tracer {
	o.tool, o.started = tool, time.Now()
	var lvl slog.Level
	switch strings.ToLower(o.LogLevel) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		fmt.Fprintf(os.Stderr, "bad -log-level %q: want debug, info, warn or error\n", o.LogLevel)
		os.Exit(2)
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	if o.TracePath != "" || o.Manifest {
		o.tracer = obs.NewTracer()
	}
	return o.tracer
}

// Tracer returns the tracer Setup created, or nil when neither -trace nor
// -manifest was requested.
func (o *Obs) Tracer() *obs.Tracer { return o.tracer }

// Finish flushes the requested telemetry: the Chrome trace to -trace, and a
// run manifest (tool, wall time, git describe, phase rollup) with -manifest.
// fill customizes the manifest — design name, engine shape, WNS/TNS — before
// it is written; pass nil to record just the run skeleton. Safe to defer
// unconditionally: it is a no-op when neither flag was set.
func (o *Obs) Finish(fill func(*obs.Manifest)) {
	if o.tracer == nil {
		return
	}
	if o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			slog.Error("trace export", "err", err)
		} else {
			err = o.tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				slog.Error("trace export", "path", o.TracePath, "err", err)
			} else {
				slog.Info("trace written", "path", o.TracePath, "spans", o.tracer.NumSpans())
			}
		}
	}
	if o.Manifest {
		m := &obs.Manifest{
			Tool:      o.tool,
			StartedAt: o.started,
			WallMS:    float64(time.Since(o.started).Nanoseconds()) / 1e6,
		}
		m.FillPhases(o.tracer)
		m.FillGC()
		if fill != nil {
			fill(m)
		}
		path, err := obs.WriteManifest(obs.ManifestDir(), m)
		if err != nil {
			slog.Error("manifest write", "err", err)
		} else {
			slog.Info("manifest written", "path", path)
		}
	}
}

// SpecByName resolves a preset name across the block (Table I), IWLS-like
// (Table II) and superblue-like (Table III) suites.
func SpecByName(name string) (bench.Spec, error) {
	if spec, err := bench.BlockSpec(name); err == nil {
		return spec, nil
	}
	if spec, err := bench.IWLSSpec(name); err == nil {
		return spec, nil
	}
	if spec, err := bench.SuperblueSpec(name); err == nil {
		return spec, nil
	}
	return bench.Spec{}, fmt.Errorf("unknown preset %q", name)
}

// designPaths returns the four canonical file paths under dir.
func designPaths(dir string) (lib, v, sdcp, spefp string) {
	return filepath.Join(dir, "design.lib"),
		filepath.Join(dir, "design.v"),
		filepath.Join(dir, "design.sdc"),
		filepath.Join(dir, "design.spef")
}

// GenerateDir materializes a preset into dir as design.lib/.v/.sdc/.spef.
func GenerateDir(dir string, spec bench.Spec) (*bench.Design, error) {
	b, err := bench.Generate(spec)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	libPath, vPath, sdcPath, spefPath := designPaths(dir)
	write := func(path string, fn func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write(libPath, func(f *os.File) error { return libertyio.Write(f, b.Lib) }); err != nil {
		return nil, err
	}
	if err := write(vPath, func(f *os.File) error { return vlog.Write(f, b.D, b.Lib) }); err != nil {
		return nil, err
	}
	if err := write(sdcPath, func(f *os.File) error { return sdcio.Write(f, b.Con, b.D) }); err != nil {
		return nil, err
	}
	if err := write(spefPath, func(f *os.File) error { return spef.Write(f, b.Par, b.D) }); err != nil {
		return nil, err
	}
	return b, nil
}

// LoadDir reads a design directory (design.v/.sdc/.spef, with design.lib
// optional) into the bench bundle the engines initialize from. When
// design.lib is absent, tech selects the synthetic fallback library: "n3"
// (also the "" default) or "asap7".
func LoadDir(dir, tech string) (*bench.Design, error) {
	libPath, vPath, sdcPath, spefPath := designPaths(dir)

	var lib *liberty.Library
	if fl, err := os.Open(libPath); err == nil {
		lib, err = libertyio.Read(fl)
		fl.Close()
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", libPath, err)
		}
	} else {
		switch tech {
		case "asap7":
			lib = liberty.NewSynthetic(liberty.TechASAP7())
		case "n3", "":
			lib = liberty.NewSynthetic(liberty.TechN3())
		default:
			return nil, fmt.Errorf("unknown tech %q", tech)
		}
	}

	fv, err := os.Open(vPath)
	if err != nil {
		return nil, err
	}
	d, err := vlog.Read(fv, lib)
	fv.Close()
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", vPath, err)
	}

	fs, err := os.Open(sdcPath)
	if err != nil {
		return nil, err
	}
	con, err := sdcio.Read(fs, d)
	fs.Close()
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", sdcPath, err)
	}

	fp, err := os.Open(spefPath)
	if err != nil {
		return nil, err
	}
	par, err := spef.Read(fp, d)
	fp.Close()
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", spefPath, err)
	}
	return &bench.Design{D: d, Lib: lib, Con: con, Par: par}, nil
}
