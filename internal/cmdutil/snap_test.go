package cmdutil

import (
	"testing"

	"insta/internal/bench"
	"insta/internal/core"
	"insta/internal/liberty"
)

// bootSpec is small enough that every test here cold-builds in milliseconds.
func bootSpec(seed int64) bench.Spec {
	return bench.Spec{
		Name: "boottest", Seed: seed, Groups: 2, FFsPerGroup: 8, Layers: 4,
		Width: 8, CrossFrac: 0.1, NumPIs: 3, NumPOs: 3, Period: 1,
		Uncertainty: 10, Die: 80, VioFrac: 0.1, Tech: liberty.TechN3(),
	}
}

func wnsTNS(t *testing.T, st *core.State) (float64, float64) {
	t.Helper()
	e, err := core.NewEngineFromState(st, core.Options{TopK: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Run()
	return e.WNS(), e.TNS()
}

func TestBootPresetWarmCycle(t *testing.T) {
	s := &Snap{Dir: t.TempDir(), MaxMB: 16}
	spec := bootSpec(1)

	cold, err := s.BootPreset(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Warm || cold.Ref == nil || cold.B == nil || cold.Tab == nil || cold.State == nil || cold.Key == "" {
		t.Fatalf("cold boot shape wrong: %+v", cold)
	}
	if cold.Mode() != "cold" || cold.Build <= 0 {
		t.Fatalf("cold boot mode %q build %v", cold.Mode(), cold.Build)
	}

	warm, err := s.BootPreset(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm || warm.Ref != nil || warm.B != nil || warm.State == nil {
		t.Fatalf("warm boot shape wrong: %+v", warm)
	}
	if warm.Key != cold.Key {
		t.Fatalf("key changed across identical boots: %s vs %s", warm.Key, cold.Key)
	}
	if warm.Mode() != "warm" || warm.Load <= 0 {
		t.Fatalf("warm boot mode %q load %v", warm.Mode(), warm.Load)
	}
	// Boot.Tables() round-trips on the warm path.
	if tab := warm.Tables(); tab.NumPins != cold.Tab.NumPins || len(tab.Arcs) != len(cold.Tab.Arcs) {
		t.Fatal("warm Tables() disagrees with cold extraction")
	}

	cw, ct := wnsTNS(t, cold.State)
	ww, wt := wnsTNS(t, warm.State)
	if cw != ww || ct != wt {
		t.Fatalf("warm boot not bit-identical: cold %v/%v warm %v/%v", cw, ct, ww, wt)
	}
}

func TestBootDirWarmCycleAndInvalidation(t *testing.T) {
	s := &Snap{Dir: t.TempDir(), MaxMB: 16}
	dir := t.TempDir()
	if _, err := GenerateDir(dir, bootSpec(1)); err != nil {
		t.Fatal(err)
	}

	cold, err := s.BootDir(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Warm || cold.Key == "" {
		t.Fatalf("first dir boot should be cold with a key, got %+v", cold)
	}
	warm, err := s.BootDir(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Warm || warm.Design != cold.Design {
		t.Fatalf("second dir boot should be warm for %q, got %+v", cold.Design, warm)
	}

	// Changing the design files must change the content address: no stale
	// snapshot can be reached, so the boot goes cold again.
	if _, err := GenerateDir(dir, bootSpec(2)); err != nil {
		t.Fatal(err)
	}
	again, err := s.BootDir(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Warm {
		t.Fatal("edited inputs still booted warm: stale snapshot served")
	}
	if again.Key == cold.Key {
		t.Fatal("edited inputs hashed to the same key")
	}
}

func TestBootDisabledRunsCold(t *testing.T) {
	s := &Snap{} // no -snapshot-dir
	if s.Enabled() || s.Cache() != nil {
		t.Fatal("zero Snap should be disabled")
	}
	bt, err := s.BootPreset(bootSpec(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Warm || bt.Key != "" || bt.Cache != nil || bt.State == nil || bt.Ref == nil {
		t.Fatalf("disabled boot shape wrong: %+v", bt)
	}
}
