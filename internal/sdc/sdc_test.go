package sdc

import (
	"testing"

	"insta/internal/netlist"
	"insta/internal/num"
)

func TestNewDefaults(t *testing.T) {
	c := New(Clock{Name: "clk", Period: 1000, Uncertainty: 20})
	if c.Clock.Period != 1000 || c.InputDelay == nil || c.OutputLoad == nil {
		t.Fatal("New did not initialize maps")
	}
	c.InputDelay[1] = num.Dist{Mean: 50, Std: 2}
	if c.InputDelay[1].Mean != 50 {
		t.Error("map write lost")
	}
}

func TestCompilePairExceptions(t *testing.T) {
	c := New(Clock{Period: 1000})
	c.Exceptions = []Exception{
		{Kind: FalsePath, From: []netlist.PinID{1, 2}, To: []netlist.PinID{10}},
		{Kind: Multicycle, From: []netlist.PinID{3}, To: []netlist.PinID{11}, Cycles: 2},
	}
	tab, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Lookup(1, 10).False || !tab.Lookup(2, 10).False {
		t.Error("false path pair not found")
	}
	if tab.Lookup(1, 11).False {
		t.Error("false path leaked to wrong endpoint")
	}
	if got := tab.Lookup(3, 11).CycleCount(); got != 2 {
		t.Errorf("multicycle cycles = %d, want 2", got)
	}
	if got := tab.Lookup(3, 10).CycleCount(); got != 1 {
		t.Errorf("untouched pair cycles = %d, want 1", got)
	}
}

func TestCompileOpenSides(t *testing.T) {
	c := New(Clock{Period: 1000})
	c.Exceptions = []Exception{
		{Kind: FalsePath, From: []netlist.PinID{5}},            // -from only: any endpoint
		{Kind: Multicycle, To: []netlist.PinID{20}, Cycles: 3}, // -to only: any startpoint
		{Kind: FalsePath, From: []netlist.PinID{7}, To: []netlist.PinID{21}},
	}
	tab, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Lookup(5, 99).False || !tab.Lookup(5, 20).False {
		t.Error("-from-any false path not applied")
	}
	if got := tab.Lookup(42, 20).CycleCount(); got != 3 {
		t.Errorf("-to-any multicycle = %d, want 3", got)
	}
	// Combination: pair false + to-any multicycle both apply.
	adj := tab.Lookup(7, 21)
	if !adj.False {
		t.Error("pair false path missing")
	}
}

func TestCompileRejectsFullyOpen(t *testing.T) {
	c := New(Clock{})
	c.Exceptions = []Exception{{Kind: FalsePath}}
	if _, err := c.Compile(); err == nil {
		t.Error("Compile accepted exception with no endpoints")
	}
}

func TestCompileRejectsBadMulticycle(t *testing.T) {
	c := New(Clock{})
	c.Exceptions = []Exception{{Kind: Multicycle, From: []netlist.PinID{1}, To: []netlist.PinID{2}, Cycles: 0}}
	if _, err := c.Compile(); err == nil {
		t.Error("Compile accepted multicycle with Cycles=0")
	}
}

func TestPrecedenceLargerCycleWins(t *testing.T) {
	c := New(Clock{})
	c.Exceptions = []Exception{
		{Kind: Multicycle, From: []netlist.PinID{1}, To: []netlist.PinID{2}, Cycles: 2},
		{Kind: Multicycle, From: []netlist.PinID{1}, To: []netlist.PinID{2}, Cycles: 4},
		{Kind: Multicycle, From: []netlist.PinID{1}, To: []netlist.PinID{2}, Cycles: 3},
	}
	tab, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Lookup(1, 2).CycleCount(); got != 4 {
		t.Errorf("cycles = %d, want 4", got)
	}
}

func TestEmpty(t *testing.T) {
	c := New(Clock{})
	tab, _ := c.Compile()
	if !tab.Empty() {
		t.Error("no exceptions should compile to Empty table")
	}
	c.Exceptions = []Exception{{Kind: FalsePath, From: []netlist.PinID{1}}}
	tab, _ = c.Compile()
	if tab.Empty() {
		t.Error("table with exceptions reported Empty")
	}
}

func TestKindString(t *testing.T) {
	if FalsePath.String() != "false_path" || Multicycle.String() != "multicycle" {
		t.Error("ExceptionKind.String misbehaves")
	}
}
