// Package sdc carries the design constraints the timing engines honour:
// the clock definition, primary input/output timing context, and the timing
// exceptions (false paths, multicycle paths) that the paper's Top-K
// unique-startpoint propagation must respect (§III-A, Fig. 2).
package sdc

import (
	"fmt"

	"insta/internal/netlist"
	"insta/internal/num"
)

// Clock defines the (single) clock domain of a design.
type Clock struct {
	Name            string
	Period          float64 // ps
	Uncertainty     float64 // setup uncertainty subtracted from required time, ps
	HoldUncertainty float64 // hold uncertainty added to the hold requirement, ps
}

// ExceptionKind distinguishes the supported timing exceptions.
type ExceptionKind uint8

// Supported exception kinds.
const (
	FalsePath ExceptionKind = iota
	Multicycle
)

func (k ExceptionKind) String() string {
	if k == FalsePath {
		return "false_path"
	}
	return "multicycle"
}

// Exception relaxes or removes timing checks between startpoints (flip-flop
// clock pins or primary inputs) and endpoints (flip-flop data pins or primary
// outputs). Empty From/To lists mean "any".
type Exception struct {
	Kind   ExceptionKind
	From   []netlist.PinID
	To     []netlist.PinID
	Cycles int // Multicycle only; number of capture cycles (>= 2 relaxes)
}

// Constraints is the full constraint set of a design.
type Constraints struct {
	Clock       Clock
	InputDelay  map[netlist.PinID]num.Dist // arrival distribution at each primary input
	InputSlew   map[netlist.PinID]float64  // driving slew at each primary input, ps
	OutputDelay map[netlist.PinID]float64  // external margin at each primary output, ps
	OutputLoad  map[netlist.PinID]float64  // external load at each primary output, fF
	Exceptions  []Exception
}

// New returns an empty constraint set for the given clock.
func New(clk Clock) *Constraints {
	return &Constraints{
		Clock:       clk,
		InputDelay:  make(map[netlist.PinID]num.Dist),
		InputSlew:   make(map[netlist.PinID]float64),
		OutputDelay: make(map[netlist.PinID]float64),
		OutputLoad:  make(map[netlist.PinID]float64),
	}
}

// Adjust is the compiled effect of exceptions on one (startpoint, endpoint)
// pair.
type Adjust struct {
	False  bool // false path: the pair is not timed
	Cycles int  // capture cycle count; 1 when no multicycle applies
}

// ExceptionTable is the compiled, O(1)-lookup form of the exception list,
// keyed by (startpoint pin, endpoint pin). It corresponds to the per-pair
// exception attributes INSTA extracts from the reference tool.
type ExceptionTable struct {
	pairs map[uint64]Adjust
	// anyFrom/anyTo handle exceptions with an open side.
	fromAny map[netlist.PinID]Adjust // -to only
	toAny   map[netlist.PinID]Adjust // -from only
}

func pairKey(sp, ep netlist.PinID) uint64 {
	return uint64(uint32(sp))<<32 | uint64(uint32(ep))
}

// Compile expands the exception list into the lookup table. Exceptions with
// both sides empty are rejected (a fully open exception would disable the
// whole design). False paths dominate multicycle on the same pair; among
// multicycles the larger cycle count wins, which matches signoff-tool
// precedence closely enough for this reproduction.
func (c *Constraints) Compile() (*ExceptionTable, error) {
	t := &ExceptionTable{
		pairs:   make(map[uint64]Adjust),
		fromAny: make(map[netlist.PinID]Adjust),
		toAny:   make(map[netlist.PinID]Adjust),
	}
	merge := func(old Adjust, e Exception) Adjust {
		if e.Kind == FalsePath {
			old.False = true
			return old
		}
		if e.Cycles > old.Cycles {
			old.Cycles = e.Cycles
		}
		return old
	}
	for i, e := range c.Exceptions {
		if e.Kind == Multicycle && e.Cycles < 1 {
			return nil, fmt.Errorf("sdc: exception %d: multicycle needs Cycles >= 1, got %d", i, e.Cycles)
		}
		switch {
		case len(e.From) == 0 && len(e.To) == 0:
			return nil, fmt.Errorf("sdc: exception %d has neither -from nor -to", i)
		case len(e.From) == 0:
			for _, ep := range e.To {
				t.toAny[ep] = merge(t.toAny[ep], e)
			}
		case len(e.To) == 0:
			for _, sp := range e.From {
				t.fromAny[sp] = merge(t.fromAny[sp], e)
			}
		default:
			for _, sp := range e.From {
				for _, ep := range e.To {
					k := pairKey(sp, ep)
					t.pairs[k] = merge(t.pairs[k], e)
				}
			}
		}
	}
	return t, nil
}

// Lookup returns the combined adjustment for the (sp, ep) pair. The zero
// Adjust (False=false, Cycles=0) means "no exception"; callers should treat
// Cycles == 0 as a single-cycle check.
func (t *ExceptionTable) Lookup(sp, ep netlist.PinID) Adjust {
	out := t.pairs[pairKey(sp, ep)]
	if a, ok := t.fromAny[sp]; ok {
		out.False = out.False || a.False
		if a.Cycles > out.Cycles {
			out.Cycles = a.Cycles
		}
	}
	if a, ok := t.toAny[ep]; ok {
		out.False = out.False || a.False
		if a.Cycles > out.Cycles {
			out.Cycles = a.Cycles
		}
	}
	return out
}

// Empty reports whether the table contains no exceptions at all, letting the
// propagation kernels skip per-pair lookups entirely.
func (t *ExceptionTable) Empty() bool {
	return len(t.pairs) == 0 && len(t.fromAny) == 0 && len(t.toAny) == 0
}

// CycleCount normalizes an Adjust's capture cycle count (0 → 1).
func (a Adjust) CycleCount() int {
	if a.Cycles < 1 {
		return 1
	}
	return a.Cycles
}
