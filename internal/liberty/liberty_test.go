package liberty

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSyntheticLibrariesValidate(t *testing.T) {
	for _, tech := range []Tech{TechN3(), TechASAP7()} {
		lib := NewSynthetic(tech)
		if err := lib.Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
		// 6 combinational footprints + DFF, each at len(Drives) strengths.
		want := (len(combFootprints) + 1) * len(tech.Drives)
		if len(lib.Cells) != want {
			t.Errorf("%s: %d cells, want %d", tech.Name, len(lib.Cells), want)
		}
	}
}

func TestCellByNameAndFindArc(t *testing.T) {
	lib := NewSynthetic(TechN3())
	id, ok := lib.CellByName("NAND2_X2")
	if !ok {
		t.Fatal("NAND2_X2 missing")
	}
	c := lib.Cell(id)
	if c.Footprint != "NAND2" || c.Drive != 1 {
		t.Errorf("NAND2_X2: footprint=%s drive=%d", c.Footprint, c.Drive)
	}
	if a := c.FindArc("A", "Y"); a == nil {
		t.Error("arc A->Y missing")
	} else if a.Sense != NegativeUnate {
		t.Errorf("NAND2 sense = %v", a.Sense)
	}
	if a := c.FindArc("Y", "A"); a != nil {
		t.Error("reverse arc should not exist")
	}
	if _, ok := lib.CellByName("MISSING_X9"); ok {
		t.Error("found nonexistent cell")
	}
}

func TestXORIsNonUnateAndDFFIsSeq(t *testing.T) {
	lib := NewSynthetic(TechN3())
	id, _ := lib.CellByName("XOR2_X1")
	if lib.Cell(id).Arcs[0].Sense != NonUnate {
		t.Error("XOR2 should be non-unate")
	}
	id, ok := lib.CellByName("DFF_X1")
	if !ok {
		t.Fatal("DFF_X1 missing")
	}
	ff := lib.Cell(id)
	if !ff.Seq || ff.ClockPin != "CP" || ff.DataPin != "D" || ff.OutPin != "Q" {
		t.Errorf("DFF attributes wrong: %+v", ff)
	}
	if ff.Setup[Rise] <= 0 || ff.Setup[Fall] <= ff.Setup[Rise]-1e-12 {
		t.Errorf("DFF setup = %v", ff.Setup)
	}
	if a := ff.FindArc("CP", "Q"); a == nil || a.Sense != PositiveUnate {
		t.Error("DFF CP->Q arc missing or wrong sense")
	}
}

func TestResizeLadder(t *testing.T) {
	lib := NewSynthetic(TechN3())
	x1, _ := lib.CellByName("INV_X1")
	x8, _ := lib.CellByName("INV_X8")

	up, ok := lib.Resize(x1, 1)
	if !ok || lib.Cell(up).Name != "INV_X2" {
		t.Errorf("Resize(X1,+1) = %s ok=%v", lib.Cell(up).Name, ok)
	}
	// Clamp at top.
	top, ok := lib.Resize(x8, 5)
	if ok || top != x8 {
		t.Errorf("Resize(X8,+5) should clamp to itself, got %s ok=%v", lib.Cell(top).Name, ok)
	}
	// Clamp at bottom.
	bot, ok := lib.Resize(x1, -3)
	if ok || bot != x1 {
		t.Errorf("Resize(X1,-3) should clamp to itself, got %s ok=%v", lib.Cell(bot).Name, ok)
	}
	if got := len(lib.Siblings(x1)); got != 4 {
		t.Errorf("INV ladder size = %d, want 4", got)
	}
}

func TestDelayMonotoneInLoad(t *testing.T) {
	lib := NewSynthetic(TechN3())
	id, _ := lib.CellByName("INV_X1")
	a := lib.Cell(id).FindArc("A", "Y")
	f := func(slewRaw, l1Raw, l2Raw float64) bool {
		slew := 2 + math.Mod(math.Abs(slewRaw), 150)
		l1 := 0.5 + math.Mod(math.Abs(l1Raw), 30)
		l2 := l1 + math.Mod(math.Abs(l2Raw), 10)
		return a.Delay[Rise].Lookup(slew, l2) >= a.Delay[Rise].Lookup(slew, l1)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrongerDriveIsFaster(t *testing.T) {
	lib := NewSynthetic(TechN3())
	x1, _ := lib.CellByName("NAND2_X1")
	x4, _ := lib.CellByName("NAND2_X4")
	d1 := lib.Cell(x1).FindArc("A", "Y").Delay[Fall].Lookup(10, 8)
	d4 := lib.Cell(x4).FindArc("A", "Y").Delay[Fall].Lookup(10, 8)
	if d4 >= d1 {
		t.Errorf("X4 (%v ps) not faster than X1 (%v ps) at load 8fF", d4, d1)
	}
	// But the stronger cell costs more input cap, area and leakage.
	c1, c4 := lib.Cell(x1), lib.Cell(x4)
	if c4.PinCap["A"] <= c1.PinCap["A"] || c4.Area <= c1.Area || c4.Leakage <= c1.Leakage {
		t.Error("stronger drive should cost more cap/area/leakage")
	}
}

func TestSigmaTracksDelay(t *testing.T) {
	tech := TechN3()
	lib := NewSynthetic(tech)
	id, _ := lib.CellByName("AOI21_X1")
	a := lib.Cell(id).FindArc("B", "Y")
	d := a.Delay[Rise].Lookup(20, 4)
	s := a.Sigma[Rise].Lookup(20, 4)
	want := tech.SigmaFrac*d + tech.SigmaBase
	if math.Abs(s-want) > 1e-9 {
		t.Errorf("sigma = %v, want %v", s, want)
	}
}

func TestRiseFallAsymmetry(t *testing.T) {
	lib := NewSynthetic(TechN3())
	id, _ := lib.CellByName("INV_X1")
	a := lib.Cell(id).FindArc("A", "Y")
	r := a.Delay[Rise].Lookup(10, 4)
	f := a.Delay[Fall].Lookup(10, 4)
	if f >= r {
		t.Errorf("fall delay %v should be below rise delay %v in this tech", f, r)
	}
}

func TestValidateCatchesBadTable(t *testing.T) {
	lib := NewSynthetic(TechN3())
	id, _ := lib.CellByName("INV_X1")
	// Corrupt the slew axis ordering.
	lib.Cell(id).Arcs[0].Delay[Rise].Slew[1] = lib.Cell(id).Arcs[0].Delay[Rise].Slew[0]
	if err := lib.Validate(); err == nil {
		t.Error("Validate accepted non-increasing axis")
	}
}

func TestValidateCatchesUndeclaredPin(t *testing.T) {
	lib := NewSynthetic(TechN3())
	id, _ := lib.CellByName("INV_X1")
	lib.Cell(id).Arcs[0].From = "GHOST"
	if err := lib.Validate(); err == nil {
		t.Error("Validate accepted undeclared arc pin")
	}
}

func TestRFName(t *testing.T) {
	if RFName(Rise) != "rise" || RFName(Fall) != "fall" {
		t.Error("RFName misbehaves")
	}
}

func TestUnateString(t *testing.T) {
	if PositiveUnate.String() != "positive_unate" ||
		NegativeUnate.String() != "negative_unate" ||
		NonUnate.String() != "non_unate" {
		t.Error("Unate.String misbehaves")
	}
}

func TestInRFs(t *testing.T) {
	cases := []struct {
		u     Unate
		outRF int
		want  []int
	}{
		{PositiveUnate, Rise, []int{Rise}},
		{PositiveUnate, Fall, []int{Fall}},
		{NegativeUnate, Rise, []int{Fall}},
		{NegativeUnate, Fall, []int{Rise}},
		{NonUnate, Rise, []int{Rise, Fall}},
		{NonUnate, Fall, []int{Rise, Fall}},
	}
	for _, c := range cases {
		rfs, n := c.u.InRFs(c.outRF)
		if n != len(c.want) {
			t.Fatalf("%v out=%d: n=%d want %d", c.u, c.outRF, n, len(c.want))
		}
		for i := 0; i < n; i++ {
			if rfs[i] != c.want[i] {
				t.Errorf("%v out=%d: rfs=%v want %v", c.u, c.outRF, rfs[:n], c.want)
			}
		}
	}
}

func TestTableLookupMatchesBilinearGrid(t *testing.T) {
	lib := NewSynthetic(TechN3())
	id, _ := lib.CellByName("BUF_X2")
	a := lib.Cell(id).FindArc("A", "Y")
	// Exact on grid points.
	tb := &a.Delay[Rise]
	for i, s := range tb.Slew {
		for j, l := range tb.Load {
			if got := tb.Lookup(s, l); math.Abs(got-tb.Val[i][j]) > 1e-12 {
				t.Fatalf("grid point (%v,%v): %v != %v", s, l, got, tb.Val[i][j])
			}
		}
	}
}
