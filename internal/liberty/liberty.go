// Package liberty models the standard-cell timing library consumed by the
// reference STA engine: NLDM-style two-dimensional delay and output-slew
// tables indexed by (input slew, output load), per-arc POCV sigma tables,
// unateness, pin capacitances, drive-strength footprints for gate sizing, and
// flip-flop setup constraints.
//
// Units follow the usual signoff convention at advanced nodes: time in
// picoseconds (ps), capacitance in femtofarads (fF), resistance in ps/fF.
package liberty

import (
	"fmt"
	"sort"

	"insta/internal/num"
)

// Rise and Fall index the two signal transitions throughout the code base.
const (
	Rise = 0
	Fall = 1
)

// RFName returns "rise" or "fall" for transition index rf.
func RFName(rf int) string {
	if rf == Rise {
		return "rise"
	}
	return "fall"
}

// Unate is the timing sense of a cell arc.
type Unate uint8

// Timing senses. A positive-unate arc propagates rise→rise/fall→fall; a
// negative-unate arc inverts; a non-unate arc (e.g. XOR) propagates both
// input transitions to each output transition.
const (
	PositiveUnate Unate = iota
	NegativeUnate
	NonUnate
)

func (u Unate) String() string {
	switch u {
	case PositiveUnate:
		return "positive_unate"
	case NegativeUnate:
		return "negative_unate"
	default:
		return "non_unate"
	}
}

// InRFs reports which input transitions can cause output transition outRF
// through an arc of sense u: the same transition for positive unate, the
// opposite for negative unate, and both for non-unate arcs. It returns the
// transitions in rfs[:n].
func (u Unate) InRFs(outRF int) (rfs [2]int, n int) {
	switch u {
	case PositiveUnate:
		return [2]int{outRF, 0}, 1
	case NegativeUnate:
		return [2]int{1 - outRF, 0}, 1
	default:
		return [2]int{Rise, Fall}, 2
	}
}

// Table is an NLDM lookup table sampled on (input slew, output load).
type Table struct {
	Slew []float64   // input transition axis, ps
	Load []float64   // output capacitance axis, fF
	Val  [][]float64 // Val[i][j] at Slew[i], Load[j]
}

// Lookup bilinearly interpolates the table at (slew, load), extrapolating at
// the edges as NLDM tools do.
func (t *Table) Lookup(slew, load float64) float64 {
	return num.Bilinear(t.Slew, t.Load, t.Val, slew, load)
}

// Arc is one timing arc of a cell, from input pin From to output pin To.
// Delay, OutSlew and Sigma are indexed by the *output* transition.
type Arc struct {
	From, To string
	Sense    Unate
	Delay    [2]Table // output rise / fall delay, ps
	OutSlew  [2]Table // output transition, ps
	Sigma    [2]Table // POCV delay sigma, ps
}

// Cell is one library cell (a specific drive strength of a footprint).
type Cell struct {
	Name      string
	Footprint string  // logical function group, e.g. "NAND2"; shared pin names
	Drive     int     // position within the footprint's drive ladder (0 = weakest)
	Area      float64 // placement area, site units
	Leakage   float64 // leakage power, arbitrary units (used by sizing flows)
	PinCap    map[string]float64
	Inputs    []string
	Outputs   []string
	Arcs      []Arc

	// Sequential attributes (Seq cells only).
	Seq      bool
	ClockPin string
	DataPin  string
	OutPin   string
	Setup    [2]float64 // setup requirement for D rise/fall, ps
	Hold     [2]float64 // hold requirement for D rise/fall, ps
}

// FindArc returns the arc from input pin from to output pin to, or nil.
func (c *Cell) FindArc(from, to string) *Arc {
	for i := range c.Arcs {
		if c.Arcs[i].From == from && c.Arcs[i].To == to {
			return &c.Arcs[i]
		}
	}
	return nil
}

// Library is a set of cells grouped into footprints for sizing.
type Library struct {
	Name       string
	Cells      []*Cell
	Footprints map[string][]int32 // footprint -> cell ids ordered by Drive

	byName map[string]int32
}

// Cell returns the library cell with the given id.
func (l *Library) Cell(id int32) *Cell { return l.Cells[id] }

// CellByName resolves a cell name; ok reports existence.
func (l *Library) CellByName(name string) (int32, bool) {
	id, ok := l.byName[name]
	return id, ok
}

// Siblings returns all drive variants of cell id's footprint, ordered by
// drive strength (id itself included).
func (l *Library) Siblings(id int32) []int32 {
	return l.Footprints[l.Cells[id].Footprint]
}

// Resize returns the cell id at drive position (current + delta) within id's
// footprint, clamped to the ladder ends. ok reports whether the result
// differs from id.
func (l *Library) Resize(id int32, delta int) (int32, bool) {
	ladder := l.Siblings(id)
	pos := l.Cells[id].Drive + delta
	if pos < 0 {
		pos = 0
	}
	if pos >= len(ladder) {
		pos = len(ladder) - 1
	}
	out := ladder[pos]
	return out, out != id
}

// add registers a cell, assigning footprint/drive bookkeeping.
func (l *Library) add(c *Cell) int32 {
	id := int32(len(l.Cells))
	l.Cells = append(l.Cells, c)
	l.byName[c.Name] = id
	l.Footprints[c.Footprint] = append(l.Footprints[c.Footprint], id)
	return id
}

// Validate checks internal consistency: arcs reference declared pins, tables
// are rectangular with increasing axes, and footprint drive ladders agree on
// pin names.
func (l *Library) Validate() error {
	for _, c := range l.Cells {
		pins := map[string]bool{}
		for _, p := range c.Inputs {
			pins[p] = true
		}
		for _, p := range c.Outputs {
			pins[p] = true
		}
		for i := range c.Arcs {
			a := &c.Arcs[i]
			if !pins[a.From] || !pins[a.To] {
				return fmt.Errorf("liberty: cell %s arc %s->%s references undeclared pin", c.Name, a.From, a.To)
			}
			for rf := 0; rf < 2; rf++ {
				for _, tb := range []*Table{&a.Delay[rf], &a.OutSlew[rf], &a.Sigma[rf]} {
					if err := checkTable(tb); err != nil {
						return fmt.Errorf("liberty: cell %s arc %s->%s: %w", c.Name, a.From, a.To, err)
					}
				}
			}
		}
		for _, p := range c.Inputs {
			if _, ok := c.PinCap[p]; !ok {
				return fmt.Errorf("liberty: cell %s input %s has no pin cap", c.Name, p)
			}
		}
	}
	for fp, ladder := range l.Footprints {
		for i, id := range ladder {
			if l.Cells[id].Drive != i {
				return fmt.Errorf("liberty: footprint %s ladder out of order at %d", fp, i)
			}
			if i > 0 && len(l.Cells[id].Inputs) != len(l.Cells[ladder[0]].Inputs) {
				return fmt.Errorf("liberty: footprint %s drive variants disagree on pins", fp)
			}
		}
	}
	return nil
}

func checkTable(t *Table) error {
	if len(t.Val) != len(t.Slew) {
		return fmt.Errorf("table rows %d != slew axis %d", len(t.Val), len(t.Slew))
	}
	for i, row := range t.Val {
		if len(row) != len(t.Load) {
			return fmt.Errorf("table row %d has %d cols, want %d", i, len(row), len(t.Load))
		}
	}
	for i := 1; i < len(t.Slew); i++ {
		if t.Slew[i] <= t.Slew[i-1] {
			return fmt.Errorf("slew axis not increasing at %d", i)
		}
	}
	for i := 1; i < len(t.Load); i++ {
		if t.Load[i] <= t.Load[i-1] {
			return fmt.Errorf("load axis not increasing at %d", i)
		}
	}
	return nil
}

// Rebuild constructs a Library from parsed cells (the libertyio reader's
// entry point): cells are grouped by footprint and each ladder is ordered by
// area — the natural drive ordering, since stronger drives are strictly
// larger — with Drive indices assigned accordingly.
func Rebuild(name string, cells []*Cell) *Library {
	lib := &Library{
		Name:       name,
		Footprints: make(map[string][]int32),
		byName:     make(map[string]int32),
	}
	byFootprint := map[string][]*Cell{}
	var order []string
	for _, c := range cells {
		if _, seen := byFootprint[c.Footprint]; !seen {
			order = append(order, c.Footprint)
		}
		byFootprint[c.Footprint] = append(byFootprint[c.Footprint], c)
	}
	for _, fp := range order {
		ladder := byFootprint[fp]
		sort.SliceStable(ladder, func(a, b int) bool { return ladder[a].Area < ladder[b].Area })
		for i, c := range ladder {
			c.Drive = i
			lib.add(c)
		}
	}
	return lib
}
