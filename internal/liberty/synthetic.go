package liberty

import (
	"math"
	"strconv"
)

// Tech parameterizes a synthetic technology from which NLDM tables are
// generated. The tables are sampled from a smooth analytic delay law, which
// gives the library the properties the POCV flow depends on (monotone in
// load, mildly nonlinear in slew, sigma roughly proportional to delay)
// without shipping proprietary data. This substitutes for the paper's
// commercial 3nm and ASAP7 libraries (see DESIGN.md §2).
type Tech struct {
	Name       string
	SlewAxis   []float64 // ps
	LoadAxis   []float64 // fF
	UnitR      float64   // effective drive resistance of an X1 stage, ps/fF
	Intrinsic  float64   // parasitic (unloaded) stage delay, ps
	SlewFactor float64   // delay sensitivity to input slew, ps/ps
	SigmaFrac  float64   // POCV sigma as fraction of nominal delay
	SigmaBase  float64   // POCV sigma floor, ps
	InputCap   float64   // X1 input pin capacitance, fF
	Drives     []float64 // drive multipliers of the sizing ladder, e.g. 1,2,4,8
	Setup      float64   // flip-flop setup requirement, ps
	Hold       float64   // flip-flop hold requirement, ps
}

// TechN3 approximates the commercial 3nm node used in the paper's
// correlation study (Table I) and sizing-flow evaluation (Figs. 7-8).
func TechN3() Tech {
	return Tech{
		Name:       "n3-synthetic",
		SlewAxis:   []float64{2, 5, 10, 20, 40, 80, 160},
		LoadAxis:   []float64{0.5, 1, 2, 4, 8, 16, 32},
		UnitR:      4.0,
		Intrinsic:  6.0,
		SlewFactor: 0.08,
		SigmaFrac:  0.05,
		SigmaBase:  0.3,
		InputCap:   0.8,
		Drives:     []float64{1, 2, 4, 8},
		Setup:      12,
		Hold:       4,
	}
}

// TechASAP7 approximates the ASAP7 predictive 7nm PDK used for Table II.
func TechASAP7() Tech {
	return Tech{
		Name:       "asap7-synthetic",
		SlewAxis:   []float64{4, 8, 16, 32, 64, 128, 256},
		LoadAxis:   []float64{1, 2, 4, 8, 16, 32, 64},
		UnitR:      9.0,
		Intrinsic:  10.0,
		SlewFactor: 0.10,
		SigmaFrac:  0.06,
		SigmaBase:  0.5,
		InputCap:   1.0,
		Drives:     []float64{1, 2, 4, 8},
		Setup:      18,
		Hold:       6,
	}
}

// footprintSpec describes one logical function in the synthetic library.
type footprintSpec struct {
	name   string
	inputs []string
	sense  Unate
	// rFactor scales drive resistance (stack effect), dFactor intrinsic delay,
	// cFactor input capacitance.
	rFactor, dFactor, cFactor float64
}

var combFootprints = []footprintSpec{
	{"INV", []string{"A"}, NegativeUnate, 1.0, 1.0, 1.0},
	{"BUF", []string{"A"}, PositiveUnate, 1.0, 1.9, 0.9},
	{"NAND2", []string{"A", "B"}, NegativeUnate, 1.35, 1.2, 1.1},
	{"NOR2", []string{"A", "B"}, NegativeUnate, 1.6, 1.3, 1.1},
	{"AOI21", []string{"A", "B", "C"}, NegativeUnate, 1.8, 1.5, 1.2},
	{"XOR2", []string{"A", "B"}, NonUnate, 2.0, 1.8, 1.5},
}

// NewSynthetic builds a complete synthetic library for tech: every
// combinational footprint plus a DFF, each at every drive strength in
// tech.Drives.
func NewSynthetic(tech Tech) *Library {
	lib := &Library{
		Name:       tech.Name,
		Footprints: make(map[string][]int32),
		byName:     make(map[string]int32),
	}
	for _, fp := range combFootprints {
		for di, mul := range tech.Drives {
			lib.add(makeCombCell(tech, fp, di, mul))
		}
	}
	for di, mul := range tech.Drives {
		lib.add(makeDFFCell(tech, di, mul))
	}
	return lib
}

// delayLaw is the analytic nominal delay of a stage: intrinsic + R*C with a
// linear slew term and a mild square-root cross term that bends the table the
// way real NLDM data bends.
func delayLaw(tech Tech, rEff, dFactor, rfScale, slew, load float64) float64 {
	return rfScale * (tech.Intrinsic*dFactor + rEff*load + tech.SlewFactor*slew + 0.35*math.Sqrt(rEff*load*slew*0.1))
}

func slewLaw(tech Tech, rEff, rfScale, slew, load float64) float64 {
	return rfScale * (1.2*rEff*load + 0.15*slew + 2.0)
}

func rfScale(rf int) float64 {
	if rf == Rise {
		return 1.0
	}
	return 0.92
}

// fillTables samples the laws over the tech grid for output transition rf.
func fillTables(tech Tech, rEff, dFactor float64, rf int) (delay, outSlew, sigma Table) {
	ns, nl := len(tech.SlewAxis), len(tech.LoadAxis)
	mk := func() Table {
		v := make([][]float64, ns)
		for i := range v {
			v[i] = make([]float64, nl)
		}
		return Table{Slew: append([]float64(nil), tech.SlewAxis...), Load: append([]float64(nil), tech.LoadAxis...), Val: v}
	}
	delay, outSlew, sigma = mk(), mk(), mk()
	for i, s := range tech.SlewAxis {
		for j, l := range tech.LoadAxis {
			d := delayLaw(tech, rEff, dFactor, rfScale(rf), s, l)
			delay.Val[i][j] = d
			outSlew.Val[i][j] = slewLaw(tech, rEff, rfScale(rf), s, l)
			sigma.Val[i][j] = tech.SigmaFrac*d + tech.SigmaBase
		}
	}
	return delay, outSlew, sigma
}

func makeCombCell(tech Tech, fp footprintSpec, di int, mul float64) *Cell {
	rEff := tech.UnitR * fp.rFactor / mul
	c := &Cell{
		Name:      fp.name + driveLabel(mul),
		Footprint: fp.name,
		Drive:     di,
		Area:      (1 + 0.6*float64(len(fp.inputs))) * mul,
		Leakage:   0.1 * mul * fp.dFactor,
		PinCap:    make(map[string]float64, len(fp.inputs)),
		Inputs:    append([]string(nil), fp.inputs...),
		Outputs:   []string{"Y"},
	}
	for _, in := range fp.inputs {
		c.PinCap[in] = tech.InputCap * fp.cFactor * mul
	}
	for _, in := range fp.inputs {
		a := Arc{From: in, To: "Y", Sense: fp.sense}
		for rf := 0; rf < 2; rf++ {
			a.Delay[rf], a.OutSlew[rf], a.Sigma[rf] = fillTables(tech, rEff, fp.dFactor, rf)
		}
		c.Arcs = append(c.Arcs, a)
	}
	return c
}

func makeDFFCell(tech Tech, di int, mul float64) *Cell {
	rEff := tech.UnitR * 1.5 / mul
	c := &Cell{
		Name:      "DFF" + driveLabel(mul),
		Footprint: "DFF",
		Drive:     di,
		Area:      6 * mul,
		Leakage:   0.5 * mul,
		PinCap: map[string]float64{
			"D":  tech.InputCap * 1.1 * mul,
			"CP": tech.InputCap * 0.9 * mul,
		},
		Inputs:   []string{"D", "CP"},
		Outputs:  []string{"Q"},
		Seq:      true,
		ClockPin: "CP",
		DataPin:  "D",
		OutPin:   "Q",
		Setup:    [2]float64{tech.Setup, tech.Setup * 1.1},
		Hold:     [2]float64{tech.Hold, tech.Hold * 1.15},
	}
	a := Arc{From: "CP", To: "Q", Sense: PositiveUnate}
	for rf := 0; rf < 2; rf++ {
		a.Delay[rf], a.OutSlew[rf], a.Sigma[rf] = fillTables(tech, rEff, 2.2, rf)
	}
	c.Arcs = append(c.Arcs, a)
	return c
}

func driveLabel(mul float64) string {
	return "_X" + strconv.Itoa(int(mul))
}
